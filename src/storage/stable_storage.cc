#include "src/storage/stable_storage.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/common/buffer.h"
#include "src/common/check.h"
#include "src/obs/observability.h"

namespace hovercraft {

namespace {

constexpr size_t kRecordHeaderBytes = 4 + 1 + 8;  // len, type, crc
constexpr char kSnapshotFile[] = "snapshot";

uint64_t RecordCrc(uint8_t type, std::span<const uint8_t> payload) {
  const uint8_t t[1] = {type};
  return Fnv1aHash(payload, Fnv1aHash(std::span<const uint8_t>(t, 1)));
}

}  // namespace

std::string StableStorage::SegmentName(uint64_t seq) const {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "wal-%08llu", static_cast<unsigned long long>(seq));
  return buf;
}

StableStorage::Segment& StableStorage::WritableSegment() {
  if (segments_.empty()) {
    segments_.push_back(Segment{1, 0});
    return segments_.back();
  }
  Segment& cur = segments_.back();
  if (!in_baseline_ && disk_->Size(SegmentName(cur.seq)) >= segment_bytes_) {
    segments_.push_back(Segment{cur.seq + 1, 0});
    WriteBaseline();
  }
  return segments_.back();
}

void StableStorage::WriteBaseline() {
  // A freshly rotated segment restates the compaction point and the hard
  // state, so recovery can start from any retained segment prefix.
  in_baseline_ = true;
  {
    BufferWriter w(16);
    w.PutU64(base_idx_);
    w.PutU64(base_term_);
    AppendRecord(RecordType::kCompact, w.bytes());
  }
  {
    BufferWriter w(16);
    w.PutU64(static_cast<uint64_t>(term_));
    w.PutI64(static_cast<int64_t>(voted_for_));
    AppendRecord(RecordType::kHardState, w.bytes());
  }
  in_baseline_ = false;
}

void StableStorage::AppendRecord(RecordType type, const std::vector<uint8_t>& payload) {
  Segment& seg = WritableSegment();
  const std::string file = SegmentName(seg.seq);
  BufferWriter w(kRecordHeaderBytes + payload.size());
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU64(RecordCrc(static_cast<uint8_t>(type), payload));
  w.PutBytes(payload);
  disk_->Append(file, w.bytes().data(), w.bytes().size());
}

void StableStorage::PersistHardState(Term term, NodeId voted_for) {
  term_ = term;
  voted_for_ = voted_for;
  BufferWriter w(16);
  w.PutU64(static_cast<uint64_t>(term));
  w.PutI64(static_cast<int64_t>(voted_for));
  AppendRecord(RecordType::kHardState, w.bytes());
  ++stats_.meta_records;
  // A vote/term promise must never be forgotten across a crash; its sync is
  // deliberately priced at zero (rare, off the data path).
  disk_->SyncNow();
}

void StableStorage::AppendEntry(LogIndex idx, Term term, NodeId replier,
                                std::span<const uint8_t> payload) {
  BufferWriter w(24 + payload.size());
  w.PutU64(idx);
  w.PutU64(static_cast<uint64_t>(term));
  w.PutI64(static_cast<int64_t>(replier));
  w.PutBytes(payload);
  Segment& seg = WritableSegment();  // rotate before capturing the offset
  const std::string file = SegmentName(seg.seq);
  entry_locations_[idx] = {file, disk_->Size(file)};
  seg.max_entry_idx = std::max(seg.max_entry_idx, idx);
  AppendRecord(RecordType::kEntry, w.bytes());
  ++stats_.entry_records;
}

void StableStorage::AppendAnnounce(LogIndex idx, NodeId replier) {
  BufferWriter w(16);
  w.PutU64(idx);
  w.PutI64(static_cast<int64_t>(replier));
  AppendRecord(RecordType::kAnnounce, w.bytes());
  ++stats_.meta_records;
}

void StableStorage::AppendTruncate(LogIndex from) {
  BufferWriter w(8);
  w.PutU64(from);
  AppendRecord(RecordType::kTruncate, w.bytes());
  ++stats_.meta_records;
  entry_locations_.erase(entry_locations_.lower_bound(from), entry_locations_.end());
}

void StableStorage::AppendCompact(LogIndex base_idx, Term base_term) {
  base_idx_ = base_idx;
  base_term_ = base_term;
  BufferWriter w(16);
  w.PutU64(base_idx);
  w.PutU64(base_term);
  AppendRecord(RecordType::kCompact, w.bytes());
  ++stats_.meta_records;
  entry_locations_.erase(entry_locations_.begin(), entry_locations_.upper_bound(base_idx));
  // Drop the longest prefix of segments made obsolete by the new base. Only
  // a prefix is safe: a later segment's truncate/announce records may refer
  // to entries stored in any earlier retained segment.
  while (segments_.size() > 1 && segments_.front().max_entry_idx <= base_idx) {
    disk_->Delete(SegmentName(segments_.front().seq));
    segments_.erase(segments_.begin());
    ++stats_.segments_dropped;
  }
}

void StableStorage::SaveSnapshot(LogIndex idx, Term term, std::vector<uint8_t> payload) {
  BufferWriter w(28 + payload.size());
  w.PutU64(idx);
  w.PutU64(static_cast<uint64_t>(term));
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutBytes(payload);
  const uint64_t crc = Fnv1aHash(w.bytes());
  BufferWriter file(8 + w.size());
  file.PutU64(crc);
  file.PutBytes(w.bytes());
  disk_->WriteAndSync(kSnapshotFile, file.TakeBytes());
  ++stats_.snapshots_saved;
}

bool StableStorage::Sync(std::function<void()> cb) {
  const bool coalesce = policy_ != FsyncPolicy::kSyncPerAppend;
  return disk_->Sync(std::move(cb), coalesce);
}

bool StableStorage::CorruptEntry(LogIndex idx) {
  auto it = entry_locations_.find(idx);
  if (it == entry_locations_.end()) {
    return false;
  }
  // First payload byte of the record: inside the CRC-covered region.
  return disk_->FlipByte(it->second.first, it->second.second + kRecordHeaderBytes);
}

StableStorage::Recovery StableStorage::Recover(bool protocol_aware) {
  ++stats_.recoveries;
  // Recovery trace instant + flight-recorder event, on the cluster track
  // (the node's own track may not exist yet at replay time).
  auto recovery_mark = [this](const char* name, const std::string& detail,
                              obs::FrRecovery kind, uint64_t arg) {
    Simulator* sim = disk_->sim();
    if (auto* tracer = obs::TracerOf(sim)) {
      tracer->Instant(obs::kClusterPid, obs::kTidEvents, name, sim->Now(),
                      "node " + std::to_string(node_) + " " + detail);
    }
    if (auto* fr = obs::FrOf(sim)) {
      fr->Record(sim->Now(), node_, obs::FrType::kRecovery,
                 static_cast<uint64_t>(kind), arg);
    }
  };
  Recovery rec;
  segments_.clear();
  entry_locations_.clear();

  // --- snapshot file --------------------------------------------------------
  if (disk_->Exists(kSnapshotFile)) {
    const std::vector<uint8_t>& raw = disk_->Read(kSnapshotFile);
    BufferReader r(raw);
    uint64_t crc = 0;
    uint64_t idx = 0;
    uint64_t term = 0;
    uint32_t len = 0;
    bool ok = r.GetU64(crc).ok() && r.GetU64(idx).ok() && r.GetU64(term).ok() &&
              r.GetU32(len).ok() && r.remaining() == len;
    if (ok) {
      ok = crc == Fnv1aHash(std::span<const uint8_t>(raw).subspan(8));
    }
    if (ok) {
      rec.has_snapshot = true;
      rec.snapshot_index = idx;
      rec.snapshot_term = term;
      rec.snapshot_payload.assign(raw.begin() + static_cast<ptrdiff_t>(raw.size() - len),
                                  raw.end());
    } else {
      // A damaged snapshot loses durable applied state below the log base;
      // the node must be repaired by an InstallSnapshot from the leader.
      rec.suspect = true;
    }
  }

  // --- WAL segments ---------------------------------------------------------
  std::vector<std::string> files = disk_->List("wal-");
  bool hole = false;
  LogIndex hole_idx = 0;
  bool midstream_break = false;
  bool stop_all = false;  // naive-mode silent truncation tripped
  LogIndex durable_tail = 0;

  for (size_t fi = 0; fi < files.size(); ++fi) {
    const std::string& file = files[fi];
    uint64_t seq = 0;
    if (std::sscanf(file.c_str(), "wal-%llu", reinterpret_cast<unsigned long long*>(&seq)) != 1) {
      continue;
    }
    if (stop_all) {
      disk_->Delete(file);
      continue;
    }
    segments_.push_back(Segment{seq, 0});
    Segment& seg = segments_.back();
    const std::vector<uint8_t>& bytes = disk_->Read(file);
    size_t off = 0;
    while (off < bytes.size()) {
      uint32_t len = 0;
      uint8_t type = 0;
      uint64_t crc = 0;
      bool framed = bytes.size() - off >= kRecordHeaderBytes;
      if (framed) {
        BufferReader hdr(std::span<const uint8_t>(bytes).subspan(off, kRecordHeaderBytes));
        HC_CHECK(hdr.GetU32(len).ok() && hdr.GetU8(type).ok() && hdr.GetU64(crc).ok());
        framed = bytes.size() - off - kRecordHeaderBytes >= len;
      }
      if (!framed) {
        // The byte stream ends mid-record. At the physical tail of the WAL
        // this is a torn write (unsynced, hence unacked): truncate it. A
        // CRC-valid record beyond the break — found by resyncing on the next
        // plausible header — proves the break sits *inside* durable data
        // (e.g. a flipped length field), so the entries beyond it are lost:
        // suspect territory, and their indices still raise the suspect floor.
        bool data_beyond = fi + 1 < files.size();
        if (protocol_aware) {
          size_t probe = off + 1;
          while (probe + kRecordHeaderBytes <= bytes.size()) {
            BufferReader phdr(
                std::span<const uint8_t>(bytes).subspan(probe, kRecordHeaderBytes));
            uint32_t plen = 0;
            uint8_t ptype = 0;
            uint64_t pcrc = 0;
            HC_CHECK(phdr.GetU32(plen).ok() && phdr.GetU8(ptype).ok() && phdr.GetU64(pcrc).ok());
            if (ptype >= 1 && ptype <= 5 &&
                plen <= bytes.size() - probe - kRecordHeaderBytes) {
              const auto ppayload =
                  std::span<const uint8_t>(bytes).subspan(probe + kRecordHeaderBytes, plen);
              if (pcrc == RecordCrc(ptype, ppayload)) {
                data_beyond = true;
                if (static_cast<RecordType>(ptype) == RecordType::kEntry) {
                  BufferReader pr(ppayload);
                  uint64_t pidx = 0;
                  if (pr.GetU64(pidx).ok()) {
                    durable_tail = std::max<LogIndex>(durable_tail, pidx);
                  }
                }
                probe += kRecordHeaderBytes + plen;  // re-framed: walk records
                continue;
              }
            }
            ++probe;
          }
        }
        if (data_beyond) {
          midstream_break = true;
          ++stats_.corrupt_records;
          recovery_mark("wal-crc-hole", "framing break inside durable data at offset " +
                            std::to_string(off),
                        obs::FrRecovery::kCrcHole, off);
        } else {
          ++stats_.torn_truncations;
          recovery_mark("wal-torn-tail",
                        "dropped " + std::to_string(bytes.size() - off) + " unsynced bytes",
                        obs::FrRecovery::kTornTail, bytes.size() - off);
        }
        disk_->Truncate(file, off);
        break;
      }
      const auto payload = std::span<const uint8_t>(bytes).subspan(off + kRecordHeaderBytes, len);
      const LogIndex next_expected =
          rec.entries.empty() ? rec.base_index + 1 : rec.entries.back().idx + 1;
      if (crc != RecordCrc(type, payload)) {
        ++stats_.corrupt_records;
        recovery_mark("wal-crc-hole",
                      "CRC-failed record at offset " + std::to_string(off),
                      obs::FrRecovery::kCrcHole, off);
        if (!protocol_aware) {
          // Naive recovery: silently truncate the log at the damage and
          // carry on as if the WAL simply ended here.
          disk_->Truncate(file, off);
          stop_all = true;
          break;
        }
        if (!hole) {
          hole = true;
          hole_idx = next_expected;
        }
        off += kRecordHeaderBytes + len;
        continue;
      }
      BufferReader r(payload);
      switch (static_cast<RecordType>(type)) {
        case RecordType::kHardState: {
          uint64_t term = 0;
          int64_t vote = 0;
          if (r.GetU64(term).ok() && r.GetI64(vote).ok()) {
            rec.term = static_cast<Term>(term);
            rec.voted_for = static_cast<NodeId>(vote);
          }
          break;
        }
        case RecordType::kEntry: {
          uint64_t idx = 0;
          uint64_t term = 0;
          int64_t replier = 0;
          if (r.GetU64(idx).ok() && r.GetU64(term).ok() && r.GetI64(replier).ok()) {
            durable_tail = std::max<LogIndex>(durable_tail, idx);
            if (idx > rec.base_index) {
              while (!rec.entries.empty() && rec.entries.back().idx >= idx) {
                rec.entries.pop_back();
              }
              RecoveredEntry e;
              e.idx = idx;
              e.term = static_cast<Term>(term);
              e.replier = static_cast<NodeId>(replier);
              e.payload.assign(payload.begin() + 24, payload.end());
              rec.entries.push_back(std::move(e));
              entry_locations_[idx] = {file, off};
              seg.max_entry_idx = std::max(seg.max_entry_idx, idx);
              if (hole && idx <= hole_idx) {
                hole = false;  // a later overwrite re-covered the damage
              }
            }
          }
          break;
        }
        case RecordType::kAnnounce: {
          uint64_t idx = 0;
          int64_t replier = 0;
          if (r.GetU64(idx).ok() && r.GetI64(replier).ok()) {
            auto it = std::lower_bound(
                rec.entries.begin(), rec.entries.end(), static_cast<LogIndex>(idx),
                [](const RecoveredEntry& e, LogIndex i) { return e.idx < i; });
            if (it != rec.entries.end() && it->idx == static_cast<LogIndex>(idx)) {
              it->replier = static_cast<NodeId>(replier);
            }
          }
          break;
        }
        case RecordType::kTruncate: {
          uint64_t from = 0;
          if (r.GetU64(from).ok()) {
            while (!rec.entries.empty() && rec.entries.back().idx >= static_cast<LogIndex>(from)) {
              rec.entries.pop_back();
            }
            entry_locations_.erase(entry_locations_.lower_bound(from), entry_locations_.end());
          }
          break;
        }
        case RecordType::kCompact: {
          uint64_t bidx = 0;
          uint64_t bterm = 0;
          if (r.GetU64(bidx).ok() && r.GetU64(bterm).ok() && bidx > rec.base_index) {
            rec.base_index = bidx;
            rec.base_term = static_cast<Term>(bterm);
            while (!rec.entries.empty() && rec.entries.front().idx <= rec.base_index) {
              rec.entries.erase(rec.entries.begin());
            }
            entry_locations_.erase(entry_locations_.begin(),
                                   entry_locations_.upper_bound(bidx));
            if (hole && hole_idx <= rec.base_index) {
              hole = false;  // the damage fell below a durable snapshot
            }
          }
          break;
        }
      }
      off += kRecordHeaderBytes + len;
    }
  }

  // --- finalize -------------------------------------------------------------
  if (hole && hole_idx > rec.base_index) {
    auto it = std::lower_bound(rec.entries.begin(), rec.entries.end(), hole_idx,
                               [](const RecoveredEntry& e, LogIndex i) { return e.idx < i; });
    rec.entries.erase(it, rec.entries.end());
    rec.suspect = true;
    // The rotted record itself was durable — and if it was an entry, its
    // index was at least hole_idx (its payload can't be trusted to say).
    // The floor must cover it, or a hole in the *last* record would leave
    // the node free to campaign without the entry it may have acked.
    durable_tail = std::max(durable_tail, hole_idx);
  }
  if (midstream_break) {
    rec.suspect = true;
  }
  // Enforce contiguity from base+1; anything beyond a gap is unreachable and
  // discarding it means durable loss.
  LogIndex expected = rec.base_index + 1;
  for (size_t i = 0; i < rec.entries.size(); ++i) {
    if (rec.entries[i].idx != expected) {
      rec.entries.resize(i);
      rec.suspect = true;
      break;
    }
    ++expected;
  }
  const LogIndex kept_tail = rec.entries.empty() ? rec.base_index : rec.entries.back().idx;
  entry_locations_.erase(entry_locations_.upper_bound(kept_tail), entry_locations_.end());
  rec.suspect_floor = std::max(durable_tail, rec.base_index);
  if (rec.suspect) {
    ++stats_.suspect_recoveries;
    if (auto* tracer = obs::TracerOf(disk_->sim())) {
      tracer->Instant(obs::kClusterPid, obs::kTidEvents, "recovery-suspect",
                      disk_->sim()->Now(),
                      "node " + std::to_string(node_) + " floor " +
                          std::to_string(rec.suspect_floor));
    }
  }
  stats_.recovered_entries += rec.entries.size();

  if (segments_.empty()) {
    segments_.push_back(Segment{1, 0});
  }
  term_ = rec.term;
  voted_for_ = rec.voted_for;
  base_idx_ = rec.base_index;
  base_term_ = rec.base_term;
  return rec;
}

}  // namespace hovercraft
