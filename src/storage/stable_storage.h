// StableStorage: the node's durable Raft state on a SimDisk.
//
// Layout (docs/durability.md):
//   wal-<seq>   segmented append-only record log. Record framing is
//               [u32 len][u8 type][u64 crc][payload]; the CRC covers the type
//               byte and the payload. Entry payloads are opaque to this layer
//               (src/raft/wal_codec.h encodes/decodes them); the storage
//               layer keeps only the (index, term, replier) envelope it needs
//               for replay, truncation, and corruption targeting.
//   snapshot    the latest local state snapshot (session table + application
//               state blob), written atomically via WriteAndSync.
//
// Durability discipline: records land in the volatile tail; Sync() runs a
// barrier priced by persist_latency under the configured FsyncPolicy. Hard
// state (term/vote) and snapshots are synced inline at zero cost — they are
// rare and off the data path; the model prices only the per-entry fsync the
// paper's §2.3 NVM assumption is about.
//
// Recovery replays the WAL with per-record CRC validation:
//   - a framing break at the physical tail is a torn write: the tail is
//     truncated (it was unsynced, hence unacked — safe);
//   - a CRC-bad record (or a framing break with data after it) means durable
//     bytes were lost: the reconstructed log is cut at the damage and the
//     recovery is marked *suspect* — the node must not campaign until its
//     commit index reaches everything it may ever have acknowledged
//     (`suspect_floor`), so an amnesiac replica cannot win an election and
//     un-commit acknowledged data; the missing entries are re-fetched from
//     the leader through the ordinary AppendEntries / InstallSnapshot path.
//   - with protocol-aware recovery disabled (the chaos control), the scan
//     silently truncates at the first bad record and sets no suspect flag —
//     the naive behaviour the defended path exists to avoid.
#ifndef SRC_STORAGE_STABLE_STORAGE_H_
#define SRC_STORAGE_STABLE_STORAGE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/storage/fsync_policy.h"
#include "src/storage/sim_disk.h"

namespace hovercraft {

struct StorageStats {
  uint64_t entry_records = 0;
  uint64_t meta_records = 0;  // hard-state / announce / truncate / compact
  uint64_t snapshots_saved = 0;
  uint64_t recoveries = 0;
  uint64_t recovered_entries = 0;
  uint64_t torn_truncations = 0;    // torn tails cut during recovery
  uint64_t corrupt_records = 0;     // CRC-failed records found during recovery
  uint64_t suspect_recoveries = 0;  // recoveries that lost durable bytes
  uint64_t segments_dropped = 0;
};

class StableStorage {
 public:
  // WAL record types (framing byte). Values are part of the on-disk format.
  enum class RecordType : uint8_t {
    kHardState = 1,  // u64 term, i64 voted_for
    kEntry = 2,      // u64 idx, u64 term, i64 replier, opaque entry payload
    kAnnounce = 3,   // u64 idx, i64 replier
    kTruncate = 4,   // u64 from
    kCompact = 5,    // u64 base_idx, u64 base_term
  };

  struct RecoveredEntry {
    LogIndex idx = 0;
    Term term = 0;
    NodeId replier = kInvalidNode;
    std::vector<uint8_t> payload;  // wal_codec bytes
  };

  struct Recovery {
    Term term = 0;
    NodeId voted_for = kInvalidNode;
    // Log base after replay (latest durable compaction point).
    LogIndex base_index = 0;
    Term base_term = 0;
    // Contiguous from base_index + 1.
    std::vector<RecoveredEntry> entries;
    // Durable data was discarded: the node may have acknowledged entries it
    // no longer holds and must not campaign until commit >= suspect_floor.
    bool suspect = false;
    LogIndex suspect_floor = 0;
    // Latest local snapshot, if one survived (CRC-validated).
    bool has_snapshot = false;
    LogIndex snapshot_index = 0;
    Term snapshot_term = 0;
    std::vector<uint8_t> snapshot_payload;
  };

  StableStorage(SimDisk* disk, FsyncPolicy policy, size_t segment_bytes = 256 * 1024)
      : disk_(disk), policy_(policy), segment_bytes_(segment_bytes) {}
  StableStorage(const StableStorage&) = delete;
  StableStorage& operator=(const StableStorage&) = delete;

  // --- write path (RaftNode hooks) -----------------------------------------
  // Term/vote change; synced inline (zero cost, see header comment).
  void PersistHardState(Term term, NodeId voted_for);
  void AppendEntry(LogIndex idx, Term term, NodeId replier,
                   std::span<const uint8_t> payload);
  void AppendAnnounce(LogIndex idx, NodeId replier);
  void AppendTruncate(LogIndex from);
  // Logical prefix compaction; drops whole WAL segments that fell below the
  // new base. Callers persist a covering snapshot first.
  void AppendCompact(LogIndex base_idx, Term base_term);
  // Atomically replaces the local snapshot (synced inline).
  void SaveSnapshot(LogIndex idx, Term term, std::vector<uint8_t> payload);

  // Durability barrier under the configured policy. Returns true when it
  // completed inline (cb already ran); false when cb runs later, unless the
  // process crashes first — a crash drops pending barriers entirely.
  bool Sync(std::function<void()> cb);

  // --- fault hooks ----------------------------------------------------------
  void Crash() { disk_->Crash(); }
  // Flips a byte inside the newest WAL record for `idx` (CRC-detectable).
  bool CorruptEntry(LogIndex idx);

  // --- recovery -------------------------------------------------------------
  // Replays the WAL (see header comment) and re-opens it for appending.
  Recovery Recover(bool protocol_aware);

  FsyncPolicy policy() const { return policy_; }
  void set_policy(FsyncPolicy p) { policy_ = p; }
  // Names the owning node so recovery trace instants and flight-recorder
  // events carry the right scope.
  void set_node(NodeId node) { node_ = node; }
  SimDisk* disk() { return disk_; }
  const StorageStats& stats() const { return stats_; }

 private:
  struct Segment {
    uint64_t seq = 0;
    LogIndex max_entry_idx = 0;
  };

  std::string SegmentName(uint64_t seq) const;
  // Returns the current segment, rotating (with a fresh baseline) first when
  // it outgrew segment_bytes_.
  Segment& WritableSegment();
  void AppendRecord(RecordType type, const std::vector<uint8_t>& payload);
  void WriteBaseline();

  SimDisk* disk_;
  FsyncPolicy policy_;
  size_t segment_bytes_;
  NodeId node_ = kInvalidNode;

  std::vector<Segment> segments_;
  // Mirrors of the latest persisted values, used for rotation baselines.
  Term term_ = 0;
  NodeId voted_for_ = kInvalidNode;
  LogIndex base_idx_ = 0;
  Term base_term_ = 0;
  bool in_baseline_ = false;

  // idx -> (file, record offset) of the newest entry record; corruption
  // targeting only. Pruned by compaction.
  std::map<LogIndex, std::pair<std::string, size_t>> entry_locations_;

  StorageStats stats_;
};

}  // namespace hovercraft

#endif  // SRC_STORAGE_STABLE_STORAGE_H_
