#include <gtest/gtest.h>

#include <set>

#include "src/app/state_machine.h"
#include "src/app/synthetic.h"
#include "src/app/ycsb.h"
#include "src/common/random.h"

namespace hovercraft {
namespace {

// ---------------------------------------------------------------------------
// Synthetic service
// ---------------------------------------------------------------------------

TEST(SyntheticTest, OpCodecRoundTrip) {
  SyntheticOp op;
  op.service_time = Micros(7);
  op.reply_bytes = 6000;
  Body body = EncodeSyntheticOp(op, 512);
  EXPECT_EQ(body->size(), 512u);
  Result<SyntheticOp> decoded = DecodeSyntheticOp(body);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().service_time, Micros(7));
  EXPECT_EQ(decoded.value().reply_bytes, 6000);
}

TEST(SyntheticTest, BodyNeverSmallerThanHeader) {
  Body body = EncodeSyntheticOp(SyntheticOp{}, 4);
  EXPECT_EQ(static_cast<int32_t>(body->size()), kSyntheticHeaderBytes);
}

TEST(SyntheticTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeSyntheticOp(nullptr).ok());
  EXPECT_FALSE(DecodeSyntheticOp(MakeBody({1, 2, 3})).ok());
}

TEST(SyntheticTest, ExecuteReturnsServiceTimeAndReply) {
  SyntheticService svc;
  SyntheticOp op;
  op.service_time = Micros(3);
  op.reply_bytes = 128;
  RpcRequest req(RequestId{1, 1}, R2p2Policy::kReplicatedReq, EncodeSyntheticOp(op, 24));
  ExecResult r = svc.Execute(req);
  EXPECT_EQ(r.service_time, Micros(3));
  ASSERT_NE(r.reply, nullptr);
  EXPECT_EQ(r.reply->size(), 128u);
  EXPECT_EQ(svc.ApplyCount(), 1u);
}

TEST(SyntheticTest, ReadOnlyDoesNotMutate) {
  SyntheticService svc;
  SyntheticOp op;
  op.service_time = Micros(1);
  op.reply_bytes = 8;
  RpcRequest ro(RequestId{1, 1}, R2p2Policy::kReplicatedReqRo, EncodeSyntheticOp(op, 24));
  const uint64_t digest_before = svc.Digest();
  svc.Execute(ro);
  EXPECT_EQ(svc.ApplyCount(), 0u);
  EXPECT_EQ(svc.Digest(), digest_before);
}

TEST(SyntheticTest, DigestIsOrderSensitive) {
  SyntheticService a;
  SyntheticService b;
  SyntheticOp op;
  op.reply_bytes = 8;
  RpcRequest r1(RequestId{1, 1}, R2p2Policy::kReplicatedReq, EncodeSyntheticOp(op, 24));
  RpcRequest r2(RequestId{1, 2}, R2p2Policy::kReplicatedReq, EncodeSyntheticOp(op, 24));
  a.Execute(r1);
  a.Execute(r2);
  b.Execute(r2);
  b.Execute(r1);
  EXPECT_NE(a.Digest(), b.Digest());
}

// ---------------------------------------------------------------------------
// YCSB-E generator
// ---------------------------------------------------------------------------

TEST(YcsbTest, MixMatchesConfiguredFractions) {
  YcsbEConfig config;
  config.conversation_count = 100;
  YcsbEGenerator gen(config);
  Rng rng(5);
  int scans = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const KvCommand cmd = gen.Next(rng);
    if (cmd.op == KvOpcode::kYScan) {
      ++scans;
      EXPECT_EQ(cmd.scan_limit, 10);
      EXPECT_TRUE(cmd.IsReadOnly());
    } else {
      EXPECT_EQ(cmd.op, KvOpcode::kYInsert);
      EXPECT_FALSE(cmd.IsReadOnly());
    }
  }
  EXPECT_NEAR(static_cast<double>(scans) / n, 0.95, 0.01);
}

TEST(YcsbTest, RecordsAre1KBWithTenFields) {
  YcsbEGenerator gen(YcsbEConfig{});
  Rng rng(6);
  const std::string record = gen.MakeRecord(rng);
  EXPECT_GE(record.size(), 1000u);
  size_t fields = 0;
  for (char c : record) {
    if (c == ';') {
      ++fields;
    }
  }
  EXPECT_EQ(fields, 10u);
}

TEST(YcsbTest, KeysStayInRange) {
  YcsbEConfig config;
  config.conversation_count = 50;
  YcsbEGenerator gen(config);
  Rng rng(7);
  std::set<std::string> keys;
  for (int i = 0; i < 5000; ++i) {
    keys.insert(gen.Next(rng).key);
  }
  EXPECT_LE(keys.size(), 50u);
  EXPECT_GT(keys.size(), 20u);  // zipfian still touches many threads
}

TEST(YcsbTest, PopularityIsSkewed) {
  YcsbEConfig config;
  config.conversation_count = 1000;
  YcsbEGenerator gen(config);
  Rng rng(8);
  int hottest = 0;
  const int n = 20000;
  const std::string hot_key = YcsbEGenerator::ConversationKey(0);
  for (int i = 0; i < n; ++i) {
    if (gen.Next(rng).key == hot_key) {
      ++hottest;
    }
  }
  // Uniform share would be 20; zipfian gives the head far more.
  EXPECT_GT(hottest, 200);
}

TEST(YcsbTest, PreloadCoversAllConversations) {
  YcsbEConfig config;
  config.conversation_count = 20;
  config.preload_per_conversation = 3;
  YcsbEGenerator gen(config);
  Rng rng(9);
  const auto commands = gen.PreloadCommands(rng);
  EXPECT_EQ(commands.size(), 60u);
  std::set<std::string> keys;
  for (const KvCommand& cmd : commands) {
    EXPECT_EQ(cmd.op, KvOpcode::kYInsert);
    keys.insert(cmd.key);
  }
  EXPECT_EQ(keys.size(), 20u);
}

}  // namespace
}  // namespace hovercraft
