// The chaos harness end to end: seeded nemesis schedules against every
// replicated mode, client-observed histories checked for linearizability,
// and a deliberately broken replica to prove the checker has teeth.
//
// Any failing case here replays outside the test binary:
//   chaos_runner --schedule=<name> --seed=<seed> --mode=<mode>
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/app/kvstore/service.h"
#include "src/chaos/history.h"
#include "src/chaos/linearizability.h"
#include "src/chaos/nemesis.h"
#include "src/chaos/runner.h"
#include "src/common/check.h"

namespace hovercraft {
namespace {

ChaosRunConfig BaseConfig(ClusterMode mode, const std::string& schedule, uint64_t seed) {
  ChaosRunConfig config;
  config.mode = mode;
  config.schedule = schedule;
  config.seed = seed;
  return config;
}

const char* ModeName(ClusterMode mode) {
  switch (mode) {
    case ClusterMode::kVanillaRaft:
      return "vanilla";
    case ClusterMode::kHovercRaft:
      return "hovercraft";
    case ClusterMode::kHovercRaftPP:
      return "hovercraft++";
    default:
      return "?";
  }
}

// Every scripted schedule plus the randomized one, in every replicated mode,
// each with its own seed: 27 distinct (schedule, seed, mode) cases covering
// symmetric/asymmetric partitions, delay, reorder, flaps, and crash+restart
// of followers and leaders.
TEST(ChaosTest, AllSchedulesAllModes) {
  const std::vector<std::string> schedules = {
      "partition-leader", "partition-halves", "asym-leader",  "delay",  "reorder",
      "flap",             "crash-follower",   "crash-leader", "random",
  };
  const std::vector<ClusterMode> modes = {
      ClusterMode::kVanillaRaft,
      ClusterMode::kHovercRaft,
      ClusterMode::kHovercRaftPP,
  };
  uint64_t case_index = 0;
  for (const std::string& schedule : schedules) {
    for (ClusterMode mode : modes) {
      const uint64_t seed = 1 + (case_index % 5);
      ++case_index;
      SCOPED_TRACE("schedule=" + schedule + " mode=" + ModeName(mode) +
                   " seed=" + std::to_string(seed));
      const ChaosRunResult result = RunChaosSchedule(BaseConfig(mode, schedule, seed));
      EXPECT_TRUE(result.ok()) << result.Describe();
      EXPECT_TRUE(result.linearizability.conclusive()) << result.Describe();
      // The schedule did something: faults fired and were logged.
      EXPECT_FALSE(result.nemesis_events.empty());
      // Clients made real progress despite the faults.
      EXPECT_GT(result.completed, 200u) << result.Describe();
    }
  }
}

// More randomized schedules for depth: each seed yields a different fault
// sequence (the nemesis logs prove it), and all histories stay linearizable.
TEST(ChaosTest, RandomScheduleSeedSweep) {
  std::vector<std::string> first_events;
  for (const uint64_t seed : {11, 12, 13, 14, 15, 16}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const ChaosRunResult result =
        RunChaosSchedule(BaseConfig(ClusterMode::kHovercRaft, "random", seed));
    EXPECT_TRUE(result.ok()) << result.Describe();
    ASSERT_FALSE(result.nemesis_events.empty());
    first_events.push_back(result.nemesis_events.front());
  }
  // Not all seeds opened with the identical first fault.
  bool any_different = false;
  for (const std::string& event : first_events) {
    any_different = any_different || event != first_events.front();
  }
  EXPECT_TRUE(any_different);
}

// Same (schedule, seed, mode) triple twice -> byte-identical fault log and
// identical client-visible outcome. This is the replay guarantee that makes
// a CI failure debuggable with chaos_runner.
TEST(ChaosTest, RunsAreDeterministic) {
  const ChaosRunConfig config = BaseConfig(ClusterMode::kHovercRaftPP, "random", 3);
  const ChaosRunResult a = RunChaosSchedule(config);
  const ChaosRunResult b = RunChaosSchedule(config);
  EXPECT_EQ(a.nemesis_events, b.nemesis_events);
  EXPECT_EQ(a.invoked, b.invoked);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dropped_by_fault, b.dropped_by_fault);
  EXPECT_EQ(a.node_states, b.node_states);
  EXPECT_EQ(a.linearizability.states_explored, b.linearizability.states_explored);
}

// Control run: no nemesis, everything completes, nothing is dropped.
TEST(ChaosTest, QuietRunCompletesEverything) {
  const ChaosRunResult result =
      RunChaosSchedule(BaseConfig(ClusterMode::kHovercRaft, "none", 9));
  EXPECT_TRUE(result.ok()) << result.Describe();
  EXPECT_EQ(result.invoked, result.completed);
  EXPECT_EQ(result.dropped_by_fault, 0u);
  EXPECT_TRUE(result.nemesis_events.empty());
}

// Partitions actually cut traffic: the per-copy fault-drop counter moves.
TEST(ChaosTest, PartitionsDropTraffic) {
  const ChaosRunResult result =
      RunChaosSchedule(BaseConfig(ClusterMode::kHovercRaft, "partition-leader", 2));
  EXPECT_TRUE(result.ok()) << result.Describe();
  EXPECT_GT(result.dropped_by_fault, 100u);
}

// A replica that answers read-only requests from a one-write-stale copy of
// the store. Every node runs this, so replication stays consistent and
// digests converge — only the client-visible read values are wrong. Exactly
// the class of bug only a linearizability checker can catch.
class StaleReadKvService final : public StateMachine {
 public:
  ExecResult Execute(const RpcRequest& request) override {
    Result<KvCommand> cmd = DecodeKvCommand(request.body());
    HC_CHECK(cmd.ok());
    if (cmd.value().IsReadOnly()) {
      return stale_.Execute(request);
    }
    stale_ = current_;  // snapshot the pre-write state: reads lag one write
    return current_.Execute(request);
  }
  uint64_t Digest() const override { return current_.Digest(); }
  uint64_t ApplyCount() const override { return current_.ApplyCount(); }
  Body SnapshotState() const override { return current_.SnapshotState(); }
  Status RestoreState(const Body& snapshot) override {
    stale_ = KvService{};
    return current_.RestoreState(snapshot);
  }

 private:
  KvService current_;
  KvService stale_;
};

TEST(ChaosTest, CheckerRejectsStaleReads) {
  ChaosRunConfig config = BaseConfig(ClusterMode::kHovercRaft, "none", 5);
  config.app_factory = []() { return std::make_unique<StaleReadKvService>(); };
  // One nearly-sequential client on a tiny keyspace: a read that follows a
  // completed write on the same key must observe it, so a one-write-stale
  // read cannot be explained by any linearization.
  config.clients = 1;
  config.keys = 2;
  config.outstanding_limit = 1;
  const ChaosRunResult result = RunChaosSchedule(config);
  EXPECT_FALSE(result.linearizability.linearizable) << result.Describe();
  // A violation verdict is final regardless of search budget.
  EXPECT_TRUE(result.linearizability.conclusive());
  // The breakage is invisible to replica-state checks: that is the point.
  EXPECT_TRUE(result.digests_converged) << result.Describe();
}

// The recorder + checker on a hand-built history: a value read before any
// write completes but after the write was invoked is fine (concurrent), but
// reading a value that was never written anywhere must be rejected.
TEST(ChaosTest, CheckerHandlesOpenOperations) {
  auto make_op = [](HostId client, uint64_t seq, TimeNs invoke, TimeNs complete,
                    KvOpcode opcode, const std::string& key, const std::string& value,
                    KvReplyStatus status, std::vector<std::string> reply_values) {
    KvOperation op;
    op.client = client;
    op.seq = seq;
    op.invoke = invoke;
    op.complete = complete;
    op.cmd.op = opcode;
    op.cmd.key = key;
    op.cmd.value = value;
    if (complete >= 0) {
      op.has_reply = true;
      op.reply.status = status;
      op.reply.values = std::move(reply_values);
    }
    return op;
  };

  // Open SET(x, a) concurrent with GET(x) = a: the open write linearized
  // before the read explains it.
  std::vector<KvOperation> concurrent = {
      make_op(1, 1, 0, -1, KvOpcode::kSet, "x", "a", KvReplyStatus::kOk, {}),
      make_op(2, 1, 10, 20, KvOpcode::kGet, "x", "", KvReplyStatus::kOk, {"a"}),
  };
  EXPECT_TRUE(CheckKvLinearizability(concurrent).linearizable);

  // GET(x) = b with no write of b anywhere: no witness exists.
  std::vector<KvOperation> phantom = {
      make_op(1, 1, 0, 5, KvOpcode::kSet, "x", "a", KvReplyStatus::kOk, {}),
      make_op(2, 1, 10, 20, KvOpcode::kGet, "x", "", KvReplyStatus::kOk, {"b"}),
  };
  const LinearizabilityResult r = CheckKvLinearizability(phantom);
  EXPECT_FALSE(r.linearizable);
  EXPECT_EQ(r.failure_key, "x");

  // Stale read AFTER the write completed: must also be rejected.
  std::vector<KvOperation> stale = {
      make_op(1, 1, 0, 5, KvOpcode::kSet, "x", "a", KvReplyStatus::kOk, {}),
      make_op(2, 1, 10, 20, KvOpcode::kGet, "x", "", KvReplyStatus::kNotFound, {}),
  };
  EXPECT_FALSE(CheckKvLinearizability(stale).linearizable);
}

// The reply-facing schedules kill replies after execution — the hard case
// for exactly-once: the request WAS applied, only the answer vanished. With
// retransmission and the session table on, every history stays linearizable
// and no request is ever applied twice; retries demonstrably fired.
TEST(ChaosTest, ExactlyOnceUnderReplyFaults) {
  const std::vector<std::string> schedules = {"drop-replies", "crash-replier"};
  const std::vector<ClusterMode> modes = {
      ClusterMode::kVanillaRaft,
      ClusterMode::kHovercRaft,
      ClusterMode::kHovercRaftPP,
  };
  uint64_t case_index = 0;
  for (const std::string& schedule : schedules) {
    for (ClusterMode mode : modes) {
      const uint64_t seed = 1 + (case_index % 5);
      ++case_index;
      SCOPED_TRACE("schedule=" + schedule + " mode=" + ModeName(mode) +
                   " seed=" + std::to_string(seed));
      ChaosRunConfig config = BaseConfig(mode, schedule, seed);
      config.retry_enabled = true;
      // Outlive the reply blackouts (up to ~56ms) instead of abandoning.
      config.give_up = Millis(100);
      const ChaosRunResult result = RunChaosSchedule(config);
      EXPECT_TRUE(result.ok()) << result.Describe();
      EXPECT_GT(result.retransmits, 0u) << result.Describe();
      EXPECT_EQ(result.double_applies, 0u) << result.Describe();
      EXPECT_GT(result.completed, 200u) << result.Describe();
    }
  }
}

// Negative control: retries without the session table double-apply. The
// per-replica digests still converge (every replica applies the duplicate
// the same way), which is exactly why server-side dedup is required — only
// the double_applies counter and the client-visible history expose it.
TEST(ChaosTest, RetriesWithoutDedupDoubleApply) {
  ChaosRunConfig config = BaseConfig(ClusterMode::kHovercRaft, "drop-replies", 3);
  config.retry_enabled = true;
  config.dedup_enabled = false;
  config.give_up = Millis(100);
  const ChaosRunResult result = RunChaosSchedule(config);
  EXPECT_GT(result.retransmits, 0u) << result.Describe();
  EXPECT_GT(result.double_applies, 0u) << result.Describe();
  EXPECT_TRUE(result.digests_converged) << result.Describe();
}

// Retry-enabled randomized chaos: the CI sweep runs more seeds of exactly
// this configuration (see .github/workflows/ci.yml).
TEST(ChaosTest, RandomScheduleWithRetries) {
  for (const uint64_t seed : {21, 22, 23}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ChaosRunConfig config = BaseConfig(ClusterMode::kHovercRaftPP, "random", seed);
    config.retry_enabled = true;
    config.give_up = Millis(100);
    const ChaosRunResult result = RunChaosSchedule(config);
    EXPECT_TRUE(result.ok()) << result.Describe();
    EXPECT_EQ(result.double_applies, 0u) << result.Describe();
  }
}

// Membership churn under the linearizability checker: add/remove loops,
// removing the node that currently leads, and proposing an add while a
// partition is live. Every history must stay linearizable with zero double
// applies on every node, and the live members of the final committed config
// must agree byte-for-byte. Failing cases replay with e.g.
//   chaos_runner --schedule=churn-cycle --seed=1 --mode=hovercraft++ --spares=2 --retries
TEST(ChaosTest, MembershipChurnStaysLinearizable) {
  const std::vector<std::string> schedules = {"churn-cycle", "churn-remove-leader",
                                              "churn-add-partition"};
  const std::vector<ClusterMode> modes = {
      ClusterMode::kHovercRaft,
      ClusterMode::kHovercRaftPP,
  };
  uint64_t case_index = 0;
  for (const std::string& schedule : schedules) {
    for (ClusterMode mode : modes) {
      const uint64_t seed = 1 + (case_index % 4);
      ++case_index;
      SCOPED_TRACE("schedule=" + schedule + " mode=" + ModeName(mode) +
                   " seed=" + std::to_string(seed));
      ChaosRunConfig config = BaseConfig(mode, schedule, seed);
      config.spare_nodes = 2;
      // Leadership moves (and with it the replier set); clients must retry
      // across the churn to keep completing.
      config.retry_enabled = true;
      config.give_up = Millis(100);
      const ChaosRunResult result = RunChaosSchedule(config);
      EXPECT_TRUE(result.ok()) << result.Describe();
      EXPECT_EQ(result.double_applies, 0u) << result.Describe();
      EXPECT_GT(result.completed, 200u) << result.Describe();
      // The schedule actually reconfigured: at least one config committed.
      EXPECT_GT(result.final_config_idx, 0u) << result.Describe();
    }
  }
}

// Scripted membership events compose with a fault schedule: an explicit
// add-during-partition (the runner-level flags chaos_runner exposes as
// --add-server-at-us), checked end to end.
TEST(ChaosTest, ScriptedMembershipEventsUnderPartition) {
  ChaosRunConfig config = BaseConfig(ClusterMode::kHovercRaftPP, "partition-halves", 2);
  config.spare_nodes = 1;
  config.retry_enabled = true;
  config.give_up = Millis(100);
  // The partition windows sit at [w/8, w/2] and [5w/8, 7w/8] of the 150ms
  // window; propose the add inside the first one.
  config.add_server_at.push_back({Millis(30), 3});
  const ChaosRunResult result = RunChaosSchedule(config);
  EXPECT_TRUE(result.ok()) << result.Describe();
  EXPECT_EQ(result.double_applies, 0u) << result.Describe();
  // Node 3 made it into the committed config despite the partition.
  EXPECT_NE(std::find(result.final_members.begin(), result.final_members.end(), 3),
            result.final_members.end())
      << result.Describe();
}

// Churn runs replay deterministically, like every other schedule.
TEST(ChaosTest, ChurnRunsAreDeterministic) {
  ChaosRunConfig config = BaseConfig(ClusterMode::kHovercRaftPP, "churn-cycle", 7);
  config.spare_nodes = 2;
  config.retry_enabled = true;
  const ChaosRunResult a = RunChaosSchedule(config);
  const ChaosRunResult b = RunChaosSchedule(config);
  EXPECT_EQ(a.nemesis_events, b.nemesis_events);
  EXPECT_EQ(a.invoked, b.invoked);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.final_members, b.final_members);
  EXPECT_EQ(a.node_states, b.node_states);
}

// ---------------------------------------------------------------------------
// Adversarial hardening battery (docs/hardening.md): each attack schedule
// runs twice — defenses off as the control, proving the attack genuinely
// succeeds against this codebase, and defenses on, proving the hardening
// neutralizes it. Replay any case with e.g.
//   chaos_runner --schedule=rejoin-storm --seed=2 --mode=hovercraft --no-prevote
// ---------------------------------------------------------------------------

// Rejoin storm: an isolated follower inflates its term in the dark; healing
// turns that into a leader deposition. PreVote holds the term still.
TEST(ChaosTest, RejoinStormNeutralizedByPreVote) {
  ChaosRunConfig control = BaseConfig(ClusterMode::kHovercRaft, "rejoin-storm", 2);
  control.pre_vote = false;
  control.retry_enabled = true;
  control.give_up = Millis(100);
  const ChaosRunResult attacked = RunChaosSchedule(control);
  // The attack succeeds: the rejoin deposed the leader and dragged the whole
  // cluster to the storm's inflated term. Safety held regardless.
  EXPECT_GE(attacked.leader_disruptions, 1u) << attacked.Describe();
  EXPECT_TRUE(attacked.linearizability.linearizable) << attacked.Describe();

  ChaosRunConfig defended = control;
  defended.pre_vote = true;
  const ChaosRunResult hardened = RunChaosSchedule(defended);
  EXPECT_TRUE(hardened.ok()) << hardened.Describe();
  EXPECT_EQ(hardened.leader_disruptions, 0u) << hardened.Describe();
  EXPECT_LT(hardened.max_term, attacked.max_term) << hardened.Describe();
  // The isolated node demonstrably ran (and lost) pre-elections instead.
  EXPECT_GT(hardened.prevote_rounds, 0u) << hardened.Describe();
}

// Forged votes: crafted higher-term RequestVotes injected as a member.
// CheckQuorum stickiness drops them cold; without it every injection is a
// deposition.
TEST(ChaosTest, ForgedVotesNeutralizedByStickiness) {
  ChaosRunConfig control = BaseConfig(ClusterMode::kHovercRaft, "forged-vote", 3);
  control.check_quorum = false;
  control.retry_enabled = true;
  control.give_up = Millis(100);
  const ChaosRunResult attacked = RunChaosSchedule(control);
  EXPECT_GE(attacked.leader_disruptions, 1u) << attacked.Describe();
  EXPECT_GE(attacked.max_term, 100u) << attacked.Describe();
  EXPECT_TRUE(attacked.linearizability.linearizable) << attacked.Describe();

  ChaosRunConfig defended = control;
  defended.check_quorum = true;
  const ChaosRunResult hardened = RunChaosSchedule(defended);
  EXPECT_TRUE(hardened.ok()) << hardened.Describe();
  EXPECT_EQ(hardened.leader_disruptions, 0u) << hardened.Describe();
  EXPECT_LT(hardened.max_term, 100u) << hardened.Describe();
  EXPECT_GT(hardened.votes_ignored_sticky, 0u) << hardened.Describe();
}

// Timer skew: one follower's election timer fires below the heartbeat
// interval on a healthy network. PreVote converts every firing into a failed
// poll; without it each firing is a real term bump the cluster must absorb.
TEST(ChaosTest, TimerSkewNeutralizedByPreVote) {
  ChaosRunConfig control = BaseConfig(ClusterMode::kHovercRaft, "timer-skew", 4);
  control.pre_vote = false;
  control.retry_enabled = true;
  control.give_up = Millis(100);
  const ChaosRunResult attacked = RunChaosSchedule(control);
  EXPECT_GE(attacked.leader_disruptions, 1u) << attacked.Describe();
  EXPECT_TRUE(attacked.linearizability.linearizable) << attacked.Describe();

  ChaosRunConfig defended = control;
  defended.pre_vote = true;
  const ChaosRunResult hardened = RunChaosSchedule(defended);
  EXPECT_TRUE(hardened.ok()) << hardened.Describe();
  EXPECT_EQ(hardened.leader_disruptions, 0u) << hardened.Describe();
  EXPECT_GT(hardened.prevote_rounds, 0u) << hardened.Describe();
}

// Stale-read probe: the leader keeps its client-facing links while losing
// its peers. With a skewed (widened) lease and no CheckQuorum it serves
// reads from a frozen store while the majority commits fresh writes — the
// Wing & Gong checker catches the stale values. With the strict lease (and
// the other defenses on) every history stays linearizable.
TEST(ChaosTest, StaleReadsCaughtThenPreventedByLease) {
  ChaosRunConfig control = BaseConfig(ClusterMode::kHovercRaft, "stale-read-probe", 2);
  control.read_index = true;
  control.read_lease_timeout = Seconds(10);  // "clock skew": evidence never ages
  control.check_quorum = false;              // the stale leader never steps down
  control.retry_enabled = true;
  control.give_up = Millis(100);
  control.keys = 4;  // hot keyspace: reads race the new leader's writes
  const ChaosRunResult attacked = RunChaosSchedule(control);
  // Stale reads were served from the lease and flagged by the checker. A
  // violation verdict is final regardless of search budget.
  EXPECT_GT(attacked.read_index_served, 0u) << attacked.Describe();
  EXPECT_FALSE(attacked.linearizability.linearizable) << attacked.Describe();
  EXPECT_TRUE(attacked.linearizability.conclusive());

  ChaosRunConfig defended = control;
  defended.read_lease_timeout = 0;  // strict election_timeout_min lease
  defended.check_quorum = true;
  const ChaosRunResult hardened = RunChaosSchedule(defended);
  EXPECT_TRUE(hardened.ok()) << hardened.Describe();
  EXPECT_GT(hardened.read_index_served, 0u) << hardened.Describe();
}

// ReadIndex under leader failover: leased reads are real operations in the
// checked history, and crashing the leader mid-window (pending reads die
// with it, clients retransmit) must leave every history linearizable.
TEST(ChaosTest, ReadIndexLinearizableAcrossLeaderFailover) {
  for (const uint64_t seed : {1, 2, 3}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ChaosRunConfig config = BaseConfig(ClusterMode::kHovercRaft, "crash-leader", seed);
    config.read_index = true;
    config.retry_enabled = true;
    config.give_up = Millis(100);
    const ChaosRunResult result = RunChaosSchedule(config);
    EXPECT_TRUE(result.ok()) << result.Describe();
    EXPECT_GT(result.read_index_served, 0u) << result.Describe();
    EXPECT_EQ(result.double_applies, 0u) << result.Describe();
  }
}

// The paper's core RO claim, hardened: with ReadIndex on, read-only traffic
// is served without a single log entry. Identical quiet runs with the fast
// path on and off append the same number of (write) entries, and the delta
// in executions is carried entirely by leases.
TEST(ChaosTest, ReadIndexAppendsNothingForReads) {
  ChaosRunConfig base = BaseConfig(ClusterMode::kHovercRaft, "none", 6);
  ChaosRunConfig leased = base;
  leased.read_index = true;
  const ChaosRunResult ordered = RunChaosSchedule(base);
  const ChaosRunResult fast = RunChaosSchedule(leased);
  ASSERT_TRUE(ordered.ok()) << ordered.Describe();
  ASSERT_TRUE(fast.ok()) << fast.Describe();
  EXPECT_GT(fast.read_index_served, 0u) << fast.Describe();
  // Same workload, same seed: every leased read is one log entry the
  // ordered run appended and the fast-path run did not.
  EXPECT_EQ(fast.entries_appended + 3 * fast.read_index_served,  // 3 replicas
            ordered.entries_appended)
      << "fast: " << fast.Describe() << "ordered: " << ordered.Describe();
  EXPECT_EQ(fast.invoked, fast.completed) << fast.Describe();
}

// Attack runs replay deterministically, exactly like every other schedule —
// the property that makes a CI failure reproducible from the command line.
TEST(ChaosTest, AttackRunsAreDeterministic) {
  ChaosRunConfig config = BaseConfig(ClusterMode::kHovercRaft, "rejoin-storm", 5);
  config.pre_vote = false;
  const ChaosRunResult a = RunChaosSchedule(config);
  const ChaosRunResult b = RunChaosSchedule(config);
  EXPECT_EQ(a.nemesis_events, b.nemesis_events);
  EXPECT_EQ(a.invoked, b.invoked);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.max_term, b.max_term);
  EXPECT_EQ(a.leader_disruptions, b.leader_disruptions);
  EXPECT_EQ(a.node_states, b.node_states);
}

// The attack schedules with all defenses at their defaults, across modes:
// no schedule may disrupt a hardened cluster.
TEST(ChaosTest, HardenedClusterShrugsOffAllAttacks) {
  const std::vector<std::string> schedules = {"rejoin-storm", "forged-vote", "timer-skew"};
  const std::vector<ClusterMode> modes = {
      ClusterMode::kVanillaRaft,
      ClusterMode::kHovercRaft,
      ClusterMode::kHovercRaftPP,
  };
  uint64_t case_index = 0;
  for (const std::string& schedule : schedules) {
    for (ClusterMode mode : modes) {
      const uint64_t seed = 1 + (case_index % 5);
      ++case_index;
      SCOPED_TRACE("schedule=" + schedule + " mode=" + ModeName(mode) +
                   " seed=" + std::to_string(seed));
      ChaosRunConfig config = BaseConfig(mode, schedule, seed);
      config.retry_enabled = true;
      config.give_up = Millis(100);
      const ChaosRunResult result = RunChaosSchedule(config);
      EXPECT_TRUE(result.ok()) << result.Describe();
      EXPECT_EQ(result.leader_disruptions, 0u) << result.Describe();
      EXPECT_GT(result.completed, 200u) << result.Describe();
    }
  }
}

// Crash-restart schedules exercise the full repair path; the restarted node
// must catch back up and agree byte-for-byte with its peers.
TEST(ChaosTest, CrashRestartConverges) {
  for (ClusterMode mode :
       {ClusterMode::kVanillaRaft, ClusterMode::kHovercRaft, ClusterMode::kHovercRaftPP}) {
    SCOPED_TRACE(ModeName(mode));
    const ChaosRunResult result = RunChaosSchedule(BaseConfig(mode, "crash-leader", 4));
    EXPECT_TRUE(result.ok()) << result.Describe();
    EXPECT_TRUE(result.digests_converged) << result.Describe();
  }
}

}  // namespace
}  // namespace hovercraft
