// End-to-end cluster tests: real clients, the full protocol stack, and the
// simulated fabric, across all four configurations of the paper.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/app/synthetic.h"
#include "src/core/cluster.h"
#include "src/loadgen/client.h"
#include "src/loadgen/experiment.h"
#include "src/loadgen/workload.h"

namespace hovercraft {
namespace {

ClusterConfig BaseConfig(ClusterMode mode, int32_t nodes, uint64_t seed = 1) {
  ClusterConfig config;
  config.mode = mode;
  config.nodes = nodes;
  config.seed = seed;
  config.app_factory = []() { return std::make_unique<SyntheticService>(); };
  if (mode == ClusterMode::kHovercRaft || mode == ClusterMode::kHovercRaftPP) {
    config.replier_policy = ReplierPolicy::kJbsq;
    config.bounded_queue_depth = 64;
  }
  return config;
}

ExperimentConfig BaseExperiment(ClusterMode mode, int32_t nodes, uint64_t seed = 1) {
  ExperimentConfig config;
  config.cluster = BaseConfig(mode, nodes, seed);
  config.workload_factory = []() {
    SyntheticWorkloadConfig wc;
    wc.request_bytes = 24;
    wc.reply_bytes = 8;
    wc.service_time = std::make_shared<FixedDistribution>(Micros(1));
    return std::make_unique<SyntheticWorkload>(wc);
  };
  config.client_count = 2;
  config.warmup = Millis(20);
  config.measure = Millis(50);
  config.drain = Millis(100);
  config.seed = seed;
  return config;
}

// --- basic liveness: every mode completes requests with sane latency -------

class AllModesTest : public ::testing::TestWithParam<ClusterMode> {};

TEST_P(AllModesTest, CompletesRequestsAtLowLoad) {
  ExperimentConfig config = BaseExperiment(GetParam(), 3);
  const LoadMetrics m = RunLoadPoint(config, 10'000);
  EXPECT_GT(m.completed, 400u);
  EXPECT_EQ(m.lost, 0u);
  EXPECT_EQ(m.nacked, 0u);
  // Near the offered rate.
  EXPECT_NEAR(m.achieved_rps, 10'000, 1'500);
  // Unloaded latency is tens of microseconds, never milliseconds.
  EXPECT_LT(m.p99_ns, Micros(200));
  EXPECT_GT(m.p50_ns, 0);
}

TEST_P(AllModesTest, ModerateLoadKeepsTailBounded) {
  ExperimentConfig config = BaseExperiment(GetParam(), 3, 7);
  const LoadMetrics m = RunLoadPoint(config, 200'000);
  EXPECT_EQ(m.lost, 0u);
  EXPECT_NEAR(m.achieved_rps, 200'000, 20'000);
  EXPECT_LT(m.p99_ns, Micros(500));
}

INSTANTIATE_TEST_SUITE_P(Modes, AllModesTest,
                         ::testing::Values(ClusterMode::kUnreplicated, ClusterMode::kVanillaRaft,
                                           ClusterMode::kHovercRaft, ClusterMode::kHovercRaftPP),
                         [](const ::testing::TestParamInfo<ClusterMode>& info) {
                           switch (info.param) {
                             case ClusterMode::kUnreplicated:
                               return "UnRep";
                             case ClusterMode::kVanillaRaft:
                               return "VanillaRaft";
                             case ClusterMode::kHovercRaft:
                               return "HovercRaft";
                             case ClusterMode::kHovercRaftPP:
                               return "HovercRaftPP";
                           }
                           return "unknown";
                         });

// --- replication correctness ------------------------------------------------

class ReplicatedModesTest : public ::testing::TestWithParam<ClusterMode> {};

TEST_P(ReplicatedModesTest, ReplicasConvergeToIdenticalState) {
  ExperimentConfig config = BaseExperiment(GetParam(), 3, 21);
  Cluster cluster(config.cluster);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);

  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.cluster.costs, [&cluster]() { return cluster.ClientTarget(); },
      config.workload_factory(), 50'000, 99);
  cluster.network().Attach(client.get());
  client->SetMeasureWindow(0, Millis(40));
  client->StartLoad(cluster.sim().Now(), cluster.sim().Now() + Millis(40));
  cluster.sim().RunUntil(cluster.sim().Now() + Millis(140));

  EXPECT_GT(client->total_completed(), 1000u);
  // All replicas applied the same RW sequence.
  const uint64_t digest0 = cluster.server(0).app().Digest();
  const uint64_t count0 = cluster.server(0).app().ApplyCount();
  EXPECT_GT(count0, 0u);
  for (NodeId n = 1; n < cluster.node_count(); ++n) {
    EXPECT_EQ(cluster.server(n).app().Digest(), digest0) << "node " << n;
    EXPECT_EQ(cluster.server(n).app().ApplyCount(), count0) << "node " << n;
  }
}

TEST_P(ReplicatedModesTest, CommitIndexesAgree) {
  ExperimentConfig config = BaseExperiment(GetParam(), 5, 33);
  Cluster cluster(config.cluster);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);

  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.cluster.costs, [&cluster]() { return cluster.ClientTarget(); },
      config.workload_factory(), 20'000, 7);
  cluster.network().Attach(client.get());
  client->StartLoad(cluster.sim().Now(), cluster.sim().Now() + Millis(30));
  cluster.sim().RunUntil(cluster.sim().Now() + Millis(130));

  const NodeId leader = cluster.LeaderId();
  ASSERT_NE(leader, kInvalidNode);
  const LogIndex commit = cluster.server(leader).raft()->commit_index();
  EXPECT_GT(commit, 0u);
  for (NodeId n = 0; n < cluster.node_count(); ++n) {
    // Followers may lag by the in-flight window but must be close behind.
    EXPECT_GE(cluster.server(n).raft()->commit_index() + 200, commit) << "node " << n;
    EXPECT_LE(cluster.server(n).raft()->commit_index(), commit) << "node " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ReplicatedModesTest,
                         ::testing::Values(ClusterMode::kVanillaRaft, ClusterMode::kHovercRaft,
                                           ClusterMode::kHovercRaftPP),
                         [](const ::testing::TestParamInfo<ClusterMode>& info) {
                           switch (info.param) {
                             case ClusterMode::kVanillaRaft:
                               return "VanillaRaft";
                             case ClusterMode::kHovercRaft:
                               return "HovercRaft";
                             case ClusterMode::kHovercRaftPP:
                               return "HovercRaftPP";
                             default:
                               return "unknown";
                           }
                         });

// --- HovercRaft-specific behaviour ------------------------------------------

TEST(HovercraftTest, RepliesAreLoadBalancedAcrossNodes) {
  ExperimentConfig config = BaseExperiment(ClusterMode::kHovercRaft, 3, 5);
  Cluster cluster(config.cluster);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);

  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.cluster.costs, [&cluster]() { return cluster.ClientTarget(); },
      config.workload_factory(), 100'000, 13);
  cluster.network().Attach(client.get());
  client->StartLoad(cluster.sim().Now(), cluster.sim().Now() + Millis(50));
  cluster.sim().RunUntil(cluster.sim().Now() + Millis(150));

  uint64_t total = 0;
  for (NodeId n = 0; n < 3; ++n) {
    const uint64_t replies = cluster.server(n).server_stats().replies_sent;
    EXPECT_GT(replies, 0u) << "node " << n << " never replied";
    total += replies;
  }
  // Roughly even split (JBSQ with identical nodes).
  for (NodeId n = 0; n < 3; ++n) {
    const double share =
        static_cast<double>(cluster.server(n).server_stats().replies_sent) / total;
    EXPECT_GT(share, 0.15) << "node " << n;
    EXPECT_LT(share, 0.55) << "node " << n;
  }
}

TEST(HovercraftTest, ReadOnlyOpsExecuteOnlyOnReplier) {
  ExperimentConfig config = BaseExperiment(ClusterMode::kHovercRaft, 3, 17);
  config.workload_factory = []() {
    SyntheticWorkloadConfig wc;
    wc.read_only_fraction = 1.0;  // everything read-only
    wc.service_time = std::make_shared<FixedDistribution>(Micros(1));
    return std::make_unique<SyntheticWorkload>(wc);
  };
  Cluster cluster(config.cluster);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);

  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.cluster.costs, [&cluster]() { return cluster.ClientTarget(); },
      config.workload_factory(), 100'000, 23);
  cluster.network().Attach(client.get());
  client->StartLoad(cluster.sim().Now(), cluster.sim().Now() + Millis(50));
  cluster.sim().RunUntil(cluster.sim().Now() + Millis(150));

  uint64_t executed = 0;
  uint64_t skipped = 0;
  for (NodeId n = 0; n < 3; ++n) {
    executed += cluster.server(n).server_stats().ops_executed;
    skipped += cluster.server(n).server_stats().ro_skipped;
  }
  // Each RO op executes exactly once cluster-wide and is skipped N-1 times.
  EXPECT_GT(executed, 1000u);
  EXPECT_NEAR(static_cast<double>(skipped) / executed, 2.0, 0.1);
  EXPECT_GT(client->total_completed(), 0u);
}

TEST(HovercraftTest, VanillaLeaderSendsAllReplies) {
  ExperimentConfig config = BaseExperiment(ClusterMode::kVanillaRaft, 3, 19);
  Cluster cluster(config.cluster);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);

  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.cluster.costs, [&cluster]() { return cluster.ClientTarget(); },
      config.workload_factory(), 50'000, 29);
  cluster.network().Attach(client.get());
  client->StartLoad(cluster.sim().Now(), cluster.sim().Now() + Millis(40));
  cluster.sim().RunUntil(cluster.sim().Now() + Millis(140));

  const NodeId leader = cluster.LeaderId();
  ASSERT_NE(leader, kInvalidNode);
  for (NodeId n = 0; n < 3; ++n) {
    if (n == leader) {
      EXPECT_GT(cluster.server(n).server_stats().replies_sent, 0u);
    } else {
      EXPECT_EQ(cluster.server(n).server_stats().replies_sent, 0u);
    }
  }
}

TEST(HovercraftTest, FeedbackKeepsFlowControlCounterBounded) {
  ExperimentConfig config = BaseExperiment(ClusterMode::kHovercRaft, 3, 31);
  config.cluster.flow_control_threshold = 1'000'000;  // effectively unlimited
  Cluster cluster(config.cluster);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);

  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.cluster.costs, [&cluster]() { return cluster.ClientTarget(); },
      config.workload_factory(), 100'000, 37);
  cluster.network().Attach(client.get());
  client->StartLoad(cluster.sim().Now(), cluster.sim().Now() + Millis(50));
  cluster.sim().RunUntil(cluster.sim().Now() + Millis(200));

  ASSERT_NE(cluster.flow_control(), nullptr);
  EXPECT_GT(cluster.flow_control()->forwarded(), 1000u);
  // After drain, outstanding returns near zero (repliers send FEEDBACK for
  // every forwarded request).
  EXPECT_LT(cluster.flow_control()->outstanding(), 50);
}

TEST(HovercraftTest, AggregatorAbsorbsFollowerReplies) {
  ExperimentConfig config = BaseExperiment(ClusterMode::kHovercRaftPP, 3, 41);
  Cluster cluster(config.cluster);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);

  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.cluster.costs, [&cluster]() { return cluster.ClientTarget(); },
      config.workload_factory(), 100'000, 43);
  cluster.network().Attach(client.get());
  client->StartLoad(cluster.sim().Now(), cluster.sim().Now() + Millis(50));
  cluster.sim().RunUntil(cluster.sim().Now() + Millis(150));

  ASSERT_NE(cluster.aggregator(), nullptr);
  const auto& agg = cluster.aggregator()->agg_stats();
  EXPECT_GT(agg.ae_forwarded, 100u);
  EXPECT_GT(agg.replies_absorbed, 100u);
  EXPECT_GT(agg.commits_sent, 100u);
  EXPECT_GT(client->total_completed(), 1000u);
}

// Table 1's claim: the HovercRaft++ leader's message count per request is
// constant, while VanillaRaft's grows with the cluster.
TEST(HovercraftTest, LeaderMessageCountsMatchTable1Shape) {
  auto leader_msgs_per_req = [](ClusterMode mode, int32_t nodes) {
    ExperimentConfig config = BaseExperiment(mode, nodes, 47);
    Cluster cluster(config.cluster);
    EXPECT_NE(cluster.WaitForLeader(), kInvalidNode);
    auto client = std::make_unique<ClientHost>(
        &cluster.sim(), config.cluster.costs, [&cluster]() { return cluster.ClientTarget(); },
        config.workload_factory(), 100'000, 53);
    cluster.network().Attach(client.get());

    const NodeId leader = cluster.LeaderId();
    cluster.sim().RunUntil(cluster.sim().Now() + Millis(5));
    const NetCounters before = cluster.server(leader).counters();
    const TimeNs t0 = cluster.sim().Now();
    client->StartLoad(t0, t0 + Millis(50));
    cluster.sim().RunUntil(t0 + Millis(120));
    const NetCounters& after = cluster.server(leader).counters();
    const uint64_t requests = client->total_completed();
    EXPECT_GT(requests, 1000u);
    const double rx = static_cast<double>(after.rx_msgs - before.rx_msgs) / requests;
    const double tx = static_cast<double>(after.tx_msgs - before.tx_msgs) / requests;
    return std::pair<double, double>(rx, tx);
  };

  const auto [van3_rx, van3_tx] = leader_msgs_per_req(ClusterMode::kVanillaRaft, 3);
  const auto [van5_rx, van5_tx] = leader_msgs_per_req(ClusterMode::kVanillaRaft, 5);
  const auto [hpp3_rx, hpp3_tx] = leader_msgs_per_req(ClusterMode::kHovercRaftPP, 3);
  const auto [hpp5_rx, hpp5_tx] = leader_msgs_per_req(ClusterMode::kHovercRaftPP, 5);

  // Vanilla leader traffic grows with N…
  EXPECT_GT(van5_rx, van3_rx * 1.2);
  EXPECT_GT(van5_tx, van3_tx * 1.2);
  // …while the ++ leader is flat in N (within noise).
  EXPECT_NEAR(hpp5_rx, hpp3_rx, 0.5);
  EXPECT_NEAR(hpp5_tx, hpp3_tx, 0.5);
  // And the ++ leader handles far fewer messages than the vanilla leader.
  EXPECT_LT(hpp5_rx + hpp5_tx, van5_rx + van5_tx);
}

}  // namespace
}  // namespace hovercraft
