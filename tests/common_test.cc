#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace hovercraft {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing key");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code : {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
                          StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
                          StatusCode::kFailedPrecondition, StatusCode::kUnavailable,
                          StatusCode::kResourceExhausted, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(InvalidArgumentError("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, TakeValueMoves) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = r.TakeValue();
  EXPECT_EQ(v.size(), 3u);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(4);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBelow(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximate) {
  Rng rng(8);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(100.0);
  }
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(9);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

// ---------------------------------------------------------------------------
// Zipfian
// ---------------------------------------------------------------------------

TEST(ZipfianTest, ValuesInRange) {
  ZipfianGenerator zipf(100, 0.99);
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(rng), 100u);
  }
}

TEST(ZipfianTest, SkewsTowardSmallKeys) {
  ZipfianGenerator zipf(1000, 0.99);
  Rng rng(12);
  int head = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Next(rng) < 10) {
      ++head;
    }
  }
  // With theta=0.99 the 10 hottest of 1000 keys draw far more than their
  // uniform 1% share.
  EXPECT_GT(head, n / 5);
}

// ---------------------------------------------------------------------------
// Buffer
// ---------------------------------------------------------------------------

TEST(BufferTest, RoundTripScalars) {
  BufferWriter w;
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);

  BufferReader r(w.bytes());
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  ASSERT_TRUE(r.GetU8(u8).ok());
  ASSERT_TRUE(r.GetU16(u16).ok());
  ASSERT_TRUE(r.GetU32(u32).ok());
  ASSERT_TRUE(r.GetU64(u64).ok());
  ASSERT_TRUE(r.GetI64(i64).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -42);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BufferTest, RoundTripString) {
  BufferWriter w;
  w.PutString("hello world");
  w.PutString("");
  BufferReader r(w.bytes());
  std::string a;
  std::string b;
  ASSERT_TRUE(r.GetString(a).ok());
  ASSERT_TRUE(r.GetString(b).ok());
  EXPECT_EQ(a, "hello world");
  EXPECT_EQ(b, "");
}

TEST(BufferTest, UnderrunFails) {
  BufferWriter w;
  w.PutU16(7);
  BufferReader r(w.bytes());
  uint32_t v = 0;
  EXPECT_FALSE(r.GetU32(v).ok());
}

TEST(BufferTest, BadStringLengthFails) {
  BufferWriter w;
  w.PutU32(1000);  // declared length far beyond the buffer
  BufferReader r(w.bytes());
  std::string s;
  EXPECT_FALSE(r.GetString(s).ok());
}

TEST(BufferTest, Fnv1aStableAndSensitive) {
  EXPECT_EQ(Fnv1aHash("abc"), Fnv1aHash("abc"));
  EXPECT_NE(Fnv1aHash("abc"), Fnv1aHash("abd"));
  EXPECT_NE(Fnv1aHash("abc"), Fnv1aHash("abc", 1));
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

TEST(TypesTest, TimeHelpers) {
  EXPECT_EQ(Micros(3), 3000);
  EXPECT_EQ(Millis(2), 2'000'000);
  EXPECT_EQ(Seconds(1), 1'000'000'000);
}

TEST(TypesTest, ModeNames) {
  EXPECT_STREQ(ClusterModeName(ClusterMode::kUnreplicated), "UnRep");
  EXPECT_STREQ(ClusterModeName(ClusterMode::kVanillaRaft), "VanillaRaft");
  EXPECT_STREQ(ClusterModeName(ClusterMode::kHovercRaft), "HovercRaft");
  EXPECT_STREQ(ClusterModeName(ClusterMode::kHovercRaftPP), "HovercRaft++");
  EXPECT_STREQ(ReplierPolicyName(ReplierPolicy::kJbsq), "JBSQ");
}

}  // namespace
}  // namespace hovercraft
