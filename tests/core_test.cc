// Unit tests for the in-network devices (aggregator, flow-control middlebox)
// against hand-driven fake hosts, plus server-level behaviour of the
// kUnrestricted (stale-read) path.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/app/synthetic.h"
#include "src/core/aggregator.h"
#include "src/core/cluster.h"
#include "src/core/flow_control.h"
#include "src/loadgen/client.h"
#include "src/loadgen/workload.h"
#include "src/net/network.h"

namespace hovercraft {
namespace {

class SinkHost final : public Host {
 public:
  SinkHost(Simulator* sim, const CostModel& costs) : Host(sim, costs, Kind::kServer) {}

  void HandleMessage(HostId src, const MessagePtr& msg) override {
    received.push_back({src, msg});
  }

  struct Received {
    HostId src;
    MessagePtr msg;
  };
  std::vector<Received> received;

  template <typename T>
  std::vector<const T*> Of() const {
    std::vector<const T*> out;
    for (const auto& r : received) {
      if (const auto* m = dynamic_cast<const T*>(r.msg.get())) {
        out.push_back(m);
      }
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// Aggregator
// ---------------------------------------------------------------------------

class AggregatorTest : public ::testing::Test {
 protected:
  AggregatorTest() : net_(&sim_, costs_, 1), agg_(&sim_, costs_, 3) {
    for (int i = 0; i < 3; ++i) {
      nodes_.push_back(std::make_unique<SinkHost>(&sim_, costs_));
      hosts_.push_back(net_.Attach(nodes_.back().get()));
    }
    net_.Attach(&agg_);
    const Addr all = net_.CreateMulticastGroup(hosts_);
    std::vector<Addr> excluding;
    for (int i = 0; i < 3; ++i) {
      std::vector<HostId> members;
      for (int j = 0; j < 3; ++j) {
        if (j != i) {
          members.push_back(hosts_[static_cast<size_t>(j)]);
        }
      }
      excluding.push_back(net_.CreateMulticastGroup(members));
    }
    agg_.Configure(hosts_, all, excluding);
  }

  void Handshake(NodeId leader, Term term) {
    nodes_[static_cast<size_t>(leader)]->Send(agg_.id(),
                                              std::make_shared<AggVoteReq>(term));
    sim_.RunToCompletion();
  }

  void SendAe(NodeId leader, Term term, LogIndex prev, int entries, LogIndex commit = 0) {
    std::vector<WireEntry> wire(static_cast<size_t>(entries));
    for (int i = 0; i < entries; ++i) {
      wire[static_cast<size_t>(i)].term = term;
      wire[static_cast<size_t>(i)].rid = RequestId{1, prev + static_cast<uint64_t>(i) + 1};
    }
    nodes_[static_cast<size_t>(leader)]->Send(
        agg_.id(),
        std::make_shared<AppendEntriesReq>(term, leader, prev, term, commit, std::move(wire)));
    sim_.RunToCompletion();
  }

  void SendReply(NodeId follower, Term term, LogIndex match, LogIndex applied) {
    nodes_[static_cast<size_t>(follower)]->Send(
        agg_.id(), std::make_shared<AppendEntriesRep>(follower, term, true, match, applied,
                                                      match, false));
    sim_.RunToCompletion();
  }

  Simulator sim_;
  CostModel costs_;
  Network net_;
  Aggregator agg_;
  std::vector<std::unique_ptr<SinkHost>> nodes_;
  std::vector<HostId> hosts_;
};

TEST_F(AggregatorTest, VoteHandshakeFlushesAndReplies) {
  Handshake(/*leader=*/0, /*term=*/5);
  const auto votes = nodes_[0]->Of<AggVoteRep>();
  ASSERT_EQ(votes.size(), 1u);
  EXPECT_EQ(votes[0]->term(), 5u);
  EXPECT_EQ(agg_.term(), 5u);
  EXPECT_EQ(agg_.agg_stats().flushes, 1u);
}

TEST_F(AggregatorTest, ForwardsAppendToFollowersOnly) {
  Handshake(0, 1);
  SendAe(/*leader=*/0, /*term=*/1, /*prev=*/0, /*entries=*/3);
  EXPECT_EQ(nodes_[1]->Of<AppendEntriesReq>().size(), 1u);
  EXPECT_EQ(nodes_[2]->Of<AppendEntriesReq>().size(), 1u);
  EXPECT_EQ(nodes_[0]->Of<AppendEntriesReq>().size(), 0u);
  EXPECT_EQ(nodes_[1]->Of<AppendEntriesReq>()[0]->entries().size(), 3u);
}

TEST_F(AggregatorTest, QuorumReplyTriggersAggCommitToEveryone) {
  Handshake(0, 1);
  SendAe(0, 1, 0, 3);
  // One follower (majority-1 = 1 for N=3) acking commits.
  SendReply(/*follower=*/1, 1, /*match=*/3, /*applied=*/0);
  for (int n = 0; n < 3; ++n) {
    const auto commits = nodes_[static_cast<size_t>(n)]->Of<AggCommitMsg>();
    ASSERT_EQ(commits.size(), 1u) << "node " << n;
    EXPECT_EQ(commits[0]->commit(), 3u);
  }
  EXPECT_EQ(agg_.commit(), 3u);
}

TEST_F(AggregatorTest, NoCommitWithoutQuorumProgress) {
  Handshake(0, 1);
  SendAe(0, 1, 0, 3);
  SendReply(1, 1, /*match=*/0, /*applied=*/0);  // no progress
  EXPECT_EQ(nodes_[0]->Of<AggCommitMsg>().size(), 0u);
  EXPECT_EQ(agg_.commit(), 0u);
}

TEST_F(AggregatorTest, CommitCappedByLeaderAnnouncement) {
  Handshake(0, 1);
  SendAe(0, 1, 0, 2);
  // A reply claiming a match beyond the announced index must not commit
  // beyond it (stale/garbled reply).
  SendReply(1, 1, /*match=*/10, /*applied=*/0);
  ASSERT_EQ(nodes_[0]->Of<AggCommitMsg>().size(), 1u);
  EXPECT_EQ(nodes_[0]->Of<AggCommitMsg>()[0]->commit(), 2u);
}

TEST_F(AggregatorTest, PendingReannouncementForcesAggCommit) {
  Handshake(0, 1);
  SendAe(0, 1, 0, 2);
  SendReply(1, 1, 2, 2);  // commits 2
  EXPECT_EQ(nodes_[0]->Of<AggCommitMsg>().size(), 1u);
  // Leader re-announces the same index (heartbeat); the next reply must
  // produce an AGG_COMMIT even though the commit index is unchanged.
  SendAe(0, 1, /*prev=*/2, /*entries=*/0);
  SendReply(2, 1, 2, 2);
  EXPECT_EQ(nodes_[0]->Of<AggCommitMsg>().size(), 2u);
  EXPECT_EQ(nodes_[0]->Of<AggCommitMsg>()[1]->commit(), 2u);
}

TEST_F(AggregatorTest, AggCommitCarriesCompletedCounts) {
  Handshake(0, 1);
  SendAe(0, 1, 0, 4);
  SendReply(1, 1, 4, /*applied=*/2);
  const auto commits = nodes_[0]->Of<AggCommitMsg>();
  ASSERT_EQ(commits.size(), 1u);
  ASSERT_EQ(commits[0]->applied().size(), 3u);
  EXPECT_EQ(commits[0]->applied()[1], 2u);
}

TEST_F(AggregatorTest, HigherTermFlushesSoftState) {
  Handshake(0, 1);
  SendAe(0, 1, 0, 3);
  SendReply(1, 1, 3, 3);
  EXPECT_EQ(agg_.commit(), 3u);
  // New leader, higher term: registers reset, stale replies ignored.
  Handshake(2, 2);
  EXPECT_EQ(agg_.commit(), 0u);
  EXPECT_EQ(agg_.term(), 2u);
  SendReply(1, 1, 3, 3);  // stale term
  EXPECT_EQ(agg_.commit(), 0u);
}

TEST_F(AggregatorTest, StaleLeaderAppendDropped) {
  Handshake(0, 3);
  SendAe(/*leader=*/1, /*term=*/1, 0, 2);  // deposed leader
  EXPECT_EQ(nodes_[2]->Of<AppendEntriesReq>().size(), 0u);
}

// ---------------------------------------------------------------------------
// Flow control
// ---------------------------------------------------------------------------

class FlowControlTest : public ::testing::Test {
 protected:
  FlowControlTest() : net_(&sim_, costs_, 1) {
    client_ = std::make_unique<SinkHost>(&sim_, costs_);
    server_a_ = std::make_unique<SinkHost>(&sim_, costs_);
    server_b_ = std::make_unique<SinkHost>(&sim_, costs_);
    net_.Attach(client_.get());
    net_.Attach(server_a_.get());
    net_.Attach(server_b_.get());
    group_ = net_.CreateMulticastGroup({server_a_->id(), server_b_->id()});
  }

  std::unique_ptr<FlowControl> MakeMiddlebox(int64_t threshold) {
    auto fc = std::make_unique<FlowControl>(&sim_, costs_, group_, threshold);
    net_.Attach(fc.get());
    return fc;
  }

  void SendRequest(FlowControl& fc, uint64_t seq) {
    client_->Send(fc.id(),
                  std::make_shared<RpcRequest>(RequestId{client_->id(), seq},
                                               R2p2Policy::kReplicatedReq,
                                               MakeBody(std::vector<uint8_t>(24))));
    sim_.RunToCompletion();
  }

  Simulator sim_;
  CostModel costs_;
  Network net_;
  Addr group_ = kInvalidHost;
  std::unique_ptr<SinkHost> client_;
  std::unique_ptr<SinkHost> server_a_;
  std::unique_ptr<SinkHost> server_b_;
};

TEST_F(FlowControlTest, ForwardsToMulticastGroup) {
  auto fc = MakeMiddlebox(10);
  SendRequest(*fc, 1);
  EXPECT_EQ(server_a_->Of<RpcRequest>().size(), 1u);
  EXPECT_EQ(server_b_->Of<RpcRequest>().size(), 1u);
  EXPECT_EQ(fc->outstanding(), 1);
  EXPECT_EQ(fc->forwarded(), 1u);
}

TEST_F(FlowControlTest, NacksBeyondThreshold) {
  auto fc = MakeMiddlebox(2);
  SendRequest(*fc, 1);
  SendRequest(*fc, 2);
  SendRequest(*fc, 3);  // over the cap
  EXPECT_EQ(fc->nacked(), 1u);
  EXPECT_EQ(server_a_->Of<RpcRequest>().size(), 2u);
  const auto nacks = client_->Of<NackMsg>();
  ASSERT_EQ(nacks.size(), 1u);
  EXPECT_EQ(nacks[0]->rid().seq, 3u);
}

TEST_F(FlowControlTest, FeedbackReopensAdmission) {
  auto fc = MakeMiddlebox(1);
  SendRequest(*fc, 1);
  SendRequest(*fc, 2);
  EXPECT_EQ(fc->nacked(), 1u);
  // The replier acknowledges completion.
  server_a_->Send(fc->id(), std::make_shared<FeedbackMsg>(RequestId{client_->id(), 1}));
  sim_.RunToCompletion();
  EXPECT_EQ(fc->outstanding(), 0);
  SendRequest(*fc, 3);
  EXPECT_EQ(fc->nacked(), 1u);  // admitted again
  EXPECT_EQ(fc->forwarded(), 2u);
}

TEST_F(FlowControlTest, ZeroThresholdDisablesCap) {
  auto fc = MakeMiddlebox(0);
  for (uint64_t i = 1; i <= 100; ++i) {
    SendRequest(*fc, i);
  }
  EXPECT_EQ(fc->nacked(), 0u);
  EXPECT_EQ(fc->forwarded(), 100u);
}

TEST_F(FlowControlTest, CounterNeverGoesNegative) {
  auto fc = MakeMiddlebox(5);
  server_a_->Send(fc->id(), std::make_shared<FeedbackMsg>(RequestId{client_->id(), 9}));
  sim_.RunToCompletion();
  EXPECT_EQ(fc->outstanding(), 0);
}

TEST_F(FlowControlTest, DuplicateFeedbackDoesNotCorruptAdmission) {
  // The ledger is per-rid: a duplicate FEEDBACK (e.g. two repliers answering
  // the same request after a replier reassignment) releases the slot once
  // and is a no-op afterwards. It must neither go negative nor release some
  // *other* request's slot and silently widen the window.
  auto fc = MakeMiddlebox(2);
  SendRequest(*fc, 1);
  SendRequest(*fc, 2);
  EXPECT_EQ(fc->outstanding(), 2);
  for (int i = 0; i < 4; ++i) {  // 1 legitimate + 3 duplicates
    server_a_->Send(fc->id(), std::make_shared<FeedbackMsg>(RequestId{client_->id(), 1}));
  }
  sim_.RunToCompletion();
  EXPECT_EQ(fc->outstanding(), 1);  // request 2 is still in flight

  // Admission still behaves: one slot is free, so request 3 is admitted and
  // request 4 is NACKed.
  SendRequest(*fc, 3);
  SendRequest(*fc, 4);
  EXPECT_EQ(fc->outstanding(), 2);
  EXPECT_EQ(fc->nacked(), 1u);
  EXPECT_EQ(client_->Of<NackMsg>().back()->rid().seq, 4u);

  // Request 2's own FEEDBACK releases exactly its slot.
  server_a_->Send(fc->id(), std::make_shared<FeedbackMsg>(RequestId{client_->id(), 2}));
  sim_.RunToCompletion();
  EXPECT_EQ(fc->outstanding(), 1);
}

TEST_F(FlowControlTest, LeaderChangeReconcilesOrphanedSlots) {
  // Failover repair (DESIGN.md section 5c): a new leader announces itself,
  // the middlebox hands it the open ledger, and the leader classifies each
  // slot. Executed and unknown slots release immediately; pending ones wait
  // for their own FEEDBACK.
  auto fc = MakeMiddlebox(8);
  SendRequest(*fc, 1);
  SendRequest(*fc, 2);
  SendRequest(*fc, 3);
  EXPECT_EQ(fc->outstanding(), 3);

  server_a_->Send(fc->id(), std::make_shared<FcLeaderChangeMsg>(server_a_->id()));
  sim_.RunToCompletion();
  auto queries = server_a_->Of<FcReconcileReq>();
  ASSERT_EQ(queries.size(), 1u);
  ASSERT_EQ(queries[0]->rids().size(), 3u);
  EXPECT_EQ(fc->reconciles_started(), 1u);

  // rid 1 executed (replier died before FEEDBACK), rid 2 still pending,
  // rid 3 lost with the old leader.
  server_a_->Send(fc->id(), std::make_shared<FcReconcileRep>(
                                queries[0]->rids(),
                                std::vector<FcSlotState>{FcSlotState::kExecuted,
                                                         FcSlotState::kPending,
                                                         FcSlotState::kUnknown}));
  sim_.RunToCompletion();
  EXPECT_EQ(fc->outstanding(), 1);  // only rid 2 remains charged
  EXPECT_EQ(fc->reconciled_released(), 2u);
  EXPECT_EQ(fc->force_released(), 0u);

  // rid 2's own FEEDBACK converges the ledger to zero.
  server_a_->Send(fc->id(), std::make_shared<FeedbackMsg>(RequestId{client_->id(), 2}));
  sim_.RunToCompletion();
  EXPECT_EQ(fc->outstanding(), 0);
}

TEST_F(FlowControlTest, ReconcileForceReleasesAfterBoundedRounds) {
  // A leader that keeps reporting a slot as pending cannot pin the admission
  // window forever: after kMaxReconcileRounds (16) the middlebox writes the
  // slot off and counts the anomaly.
  auto fc = MakeMiddlebox(8);
  SendRequest(*fc, 1);
  server_a_->Send(fc->id(), std::make_shared<FcLeaderChangeMsg>(server_a_->id()));
  sim_.RunToCompletion();

  for (int round = 1; round <= 16; ++round) {
    auto queries = server_a_->Of<FcReconcileReq>();
    ASSERT_EQ(queries.size(), static_cast<size_t>(round));
    server_a_->Send(fc->id(),
                    std::make_shared<FcReconcileRep>(
                        queries.back()->rids(),
                        std::vector<FcSlotState>{FcSlotState::kPending}));
    sim_.RunToCompletion();
  }
  EXPECT_EQ(fc->outstanding(), 0);
  EXPECT_EQ(fc->force_released(), 1u);
  // The reconcile loop stopped: no further queries after the write-off.
  EXPECT_EQ(server_a_->Of<FcReconcileReq>().size(), 16u);
}

TEST_F(FlowControlTest, RetransmitReusesItsAdmissionSlot) {
  // A retransmitted rid that is already open must re-forward without opening
  // (or being NACKed out of) a second slot: the original admission will be
  // repaid exactly once.
  auto fc = MakeMiddlebox(1);
  SendRequest(*fc, 1);
  EXPECT_EQ(fc->outstanding(), 1);
  SendRequest(*fc, 1);  // retransmit of the admitted rid
  EXPECT_EQ(fc->outstanding(), 1);
  EXPECT_EQ(fc->nacked(), 0u);
  EXPECT_EQ(fc->forwarded(), 2u);
  EXPECT_EQ(server_a_->Of<RpcRequest>().size(), 2u);
}

TEST_F(FlowControlTest, NackedRequestLeavesNoResidualState) {
  // A NACKed request must not occupy a slot: after the NACK, one FEEDBACK
  // for an admitted request reopens exactly one slot.
  auto fc = MakeMiddlebox(1);
  SendRequest(*fc, 1);   // admitted
  SendRequest(*fc, 2);   // NACKed
  SendRequest(*fc, 3);   // NACKed
  EXPECT_EQ(fc->outstanding(), 1);
  EXPECT_EQ(fc->nacked(), 2u);
  server_a_->Send(fc->id(), std::make_shared<FeedbackMsg>(RequestId{client_->id(), 1}));
  sim_.RunToCompletion();
  SendRequest(*fc, 4);   // admitted into the freed slot
  SendRequest(*fc, 5);   // NACKed again
  EXPECT_EQ(fc->forwarded(), 2u);
  EXPECT_EQ(fc->nacked(), 3u);
  EXPECT_EQ(fc->outstanding(), 1);
}

// ---------------------------------------------------------------------------
// Unrestricted (stale-read) requests at the server (section 6.1)
// ---------------------------------------------------------------------------

TEST(UnrestrictedTest, ServedLocallyWithoutConsensus) {
  ClusterConfig config;
  config.mode = ClusterMode::kHovercRaft;
  config.nodes = 3;
  config.seed = 5;
  config.replier_policy = ReplierPolicy::kJbsq;
  config.app_factory = []() { return std::make_unique<SyntheticService>(); };
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);

  SyntheticWorkloadConfig wc;
  wc.read_only_fraction = 1.0;
  wc.unrestricted_fraction = 1.0;  // every request bypasses consensus
  wc.service_time = std::make_shared<FixedDistribution>(Micros(1));
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.costs, [&cluster]() { return cluster.ClientTarget(); },
      std::make_unique<SyntheticWorkload>(wc), 20'000, 3);
  std::vector<Addr> servers;
  for (NodeId n = 0; n < 3; ++n) {
    servers.push_back(cluster.server_host(n));
  }
  client->set_unrestricted_targets(servers);
  cluster.network().Attach(client.get());

  // Let the leader's no-op commit before snapshotting the commit index.
  cluster.sim().RunUntil(cluster.sim().Now() + Millis(5));
  const TimeNs t0 = cluster.sim().Now();
  const LogIndex commit_before =
      cluster.server(cluster.LeaderId()).raft()->commit_index();
  client->StartLoad(t0, t0 + Millis(50));
  cluster.sim().RunUntil(t0 + Millis(150));

  EXPECT_GT(client->total_completed(), 500u);
  // Consensus saw none of it (only the leader's periodic noop/heartbeats).
  const LogIndex commit_after = cluster.server(cluster.LeaderId()).raft()->commit_index();
  EXPECT_EQ(commit_after, commit_before);
  // All three replicas served a share.
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_GT(cluster.server(n).server_stats().unrestricted_served, 100u) << "node " << n;
  }
  // Flow control saw no feedback imbalance (requests never passed it).
  EXPECT_EQ(cluster.flow_control()->outstanding(), 0);
}

TEST(UnrestrictedTest, MixesWithReplicatedTraffic) {
  ClusterConfig config;
  config.mode = ClusterMode::kHovercRaft;
  config.nodes = 3;
  config.seed = 7;
  config.replier_policy = ReplierPolicy::kJbsq;
  config.app_factory = []() { return std::make_unique<SyntheticService>(); };
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);

  SyntheticWorkloadConfig wc;
  wc.read_only_fraction = 0.5;
  wc.unrestricted_fraction = 0.5;
  wc.service_time = std::make_shared<FixedDistribution>(Micros(1));
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.costs, [&cluster]() { return cluster.ClientTarget(); },
      std::make_unique<SyntheticWorkload>(wc), 40'000, 9);
  client->set_unrestricted_targets({cluster.server_host(0), cluster.server_host(1),
                                    cluster.server_host(2)});
  cluster.network().Attach(client.get());

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(50));
  cluster.sim().RunUntil(t0 + Millis(150));

  EXPECT_GT(client->total_completed(), 1500u);
  // Writes still replicated and applied identically.
  const uint64_t digest0 = cluster.server(0).app().Digest();
  EXPECT_GT(cluster.server(0).app().ApplyCount(), 0u);
  for (NodeId n = 1; n < 3; ++n) {
    EXPECT_EQ(cluster.server(n).app().Digest(), digest0);
  }
  uint64_t unrestricted = 0;
  for (NodeId n = 0; n < 3; ++n) {
    unrestricted += cluster.server(n).server_stats().unrestricted_served;
  }
  EXPECT_GT(unrestricted, 300u);
}

}  // namespace
}  // namespace hovercraft

namespace hovercraft {
namespace {

// N=5 quorum arithmetic at the aggregator: commit needs majority-1 = 2
// follower acknowledgements.
TEST(AggregatorQuorumTest, FiveNodeQuorumNeedsTwoFollowers) {
  Simulator sim;
  CostModel costs;
  Network net(&sim, costs, 1);
  std::vector<std::unique_ptr<SinkHost>> nodes;
  std::vector<HostId> hosts;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(std::make_unique<SinkHost>(&sim, costs));
    hosts.push_back(net.Attach(nodes.back().get()));
  }
  Aggregator agg(&sim, costs, 5);
  net.Attach(&agg);
  const Addr all = net.CreateMulticastGroup(hosts);
  std::vector<Addr> excluding;
  for (int i = 0; i < 5; ++i) {
    std::vector<HostId> members;
    for (int j = 0; j < 5; ++j) {
      if (j != i) {
        members.push_back(hosts[static_cast<size_t>(j)]);
      }
    }
    excluding.push_back(net.CreateMulticastGroup(members));
  }
  agg.Configure(hosts, all, excluding);

  auto send = [&](int node, MessagePtr msg) {
    nodes[static_cast<size_t>(node)]->Send(agg.id(), std::move(msg));
    sim.RunToCompletion();
  };
  send(0, std::make_shared<AggVoteReq>(1));
  std::vector<WireEntry> entries(3);
  for (int i = 0; i < 3; ++i) {
    entries[static_cast<size_t>(i)].term = 1;
    entries[static_cast<size_t>(i)].rid = RequestId{1, static_cast<uint64_t>(i) + 1};
  }
  send(0, std::make_shared<AppendEntriesReq>(1, 0, 0, 1, 0, std::move(entries)));

  // One follower ack: not enough for a 5-node quorum.
  send(1, std::make_shared<AppendEntriesRep>(1, 1, true, 3, 0, 3, false));
  EXPECT_EQ(agg.commit(), 0u);
  // Second follower ack: 2 followers + leader = majority of 5.
  send(2, std::make_shared<AppendEntriesRep>(2, 1, true, 3, 0, 3, false));
  EXPECT_EQ(agg.commit(), 3u);
}

}  // namespace
}  // namespace hovercraft
