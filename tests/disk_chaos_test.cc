// Paired disk-fault chaos proofs (docs/durability.md): with fsync-before-ack
// and protocol-aware recovery enabled, every disk-fault schedule stays
// linearizable with zero committed-entry overwrites; with either defense
// disabled (the ack-before-sync and naive-recovery controls), the same
// schedules produce detectable violations. A failing case replays outside
// the binary:
//   chaos_runner --disk-fault=<schedule> --seed=<seed> --retries [control flags]
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/chaos/runner.h"
#include "src/storage/fsync_policy.h"

namespace hovercraft {
namespace {

ChaosRunConfig DiskConfig(const std::string& schedule, uint64_t seed) {
  ChaosRunConfig config;
  config.mode = ClusterMode::kHovercRaft;
  config.schedule = schedule;
  config.seed = seed;
  config.retry_enabled = true;
  // A nonzero fsync window, or there is nothing for a power cut to lose
  // (same default the chaos_runner CLI applies to disk-* schedules).
  config.persist_latency = Micros(500);
  return config;
}

const std::vector<std::string> kDiskSchedules = {
    "disk-power-fail",
    "disk-torn-write",
    "disk-corrupt-entry",
    "disk-fsync-stall",
};

// Defended runs: all four fault modes, several seeds each. Crashes lose the
// unsynced suffix, torn writes shear records, committed entries rot on the
// platter, fsyncs stall — and the history stays linearizable with zero
// committed entries overwritten, because no ack ever preceded its fsync and
// recovery re-fetches what the disk lost.
TEST(DiskChaosTest, DefendedRunsSurviveEveryDiskFault) {
  for (const std::string& schedule : kDiskSchedules) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      SCOPED_TRACE("schedule=" + schedule + " seed=" + std::to_string(seed));
      const ChaosRunResult result = RunChaosSchedule(DiskConfig(schedule, seed));
      EXPECT_TRUE(result.ok()) << result.Describe();
      EXPECT_TRUE(result.linearizability.conclusive()) << result.Describe();
      EXPECT_EQ(result.committed_overwritten, 0u) << result.Describe();
      EXPECT_EQ(result.double_applies, 0u) << result.Describe();
      // The schedule actually bit: nodes crashed and recovered from WAL.
      EXPECT_FALSE(result.nemesis_events.empty());
      EXPECT_GT(result.wal_recoveries, 0u) << result.Describe();
      EXPECT_GT(result.completed, 200u) << result.Describe();
    }
  }
}

// Per-fault engagement: each schedule exercises the specific machinery it
// was built to test, visible in the run's durability counters.
TEST(DiskChaosTest, EachFaultExercisesItsRecoveryPath) {
  {
    const ChaosRunResult r = RunChaosSchedule(DiskConfig("disk-power-fail", 1));
    EXPECT_GT(r.disk_bytes_lost, 0u) << r.Describe();
    // Acks parked behind fsyncs existed; a power cut vaporizes them with the
    // disk queue rather than tripping the restart fence (that fence is the
    // fail-stop case — DurabilityTest.NodeKilledInsidePersistWindowNeverAcks).
    EXPECT_GT(r.acks_deferred_persist, 0u) << r.Describe();
  }
  {
    const ChaosRunResult r = RunChaosSchedule(DiskConfig("disk-torn-write", 2));
    EXPECT_GT(r.torn_truncations, 0u) << r.Describe();
  }
  {
    const ChaosRunResult r = RunChaosSchedule(DiskConfig("disk-corrupt-entry", 1));
    EXPECT_GT(r.corrupt_records, 0u) << r.Describe();
    EXPECT_GT(r.suspect_recoveries, 0u) << r.Describe();
    EXPECT_EQ(r.suspect_repaired, r.suspect_recoveries) << r.Describe();
  }
  {
    const ChaosRunResult r = RunChaosSchedule(DiskConfig("disk-fsync-stall", 1));
    EXPECT_GT(r.acks_deferred_persist, 0u) << r.Describe();
  }
}

// Control 1 — ack-before-sync: replicas confirm AppendEntries before the WAL
// write is durable. A power cut then destroys entries the leader already
// counted toward commit, and the checker catches the damage. Seeds pinned to
// values where the fault window provably bites (see the CI job).
TEST(DiskChaosTest, AckBeforeSyncControlViolatesUnderPowerLoss) {
  const std::vector<std::pair<std::string, uint64_t>> cases = {
      {"disk-power-fail", 1}, {"disk-power-fail", 2}, {"disk-torn-write", 2},
      {"disk-torn-write", 3}, {"disk-fsync-stall", 1}, {"disk-fsync-stall", 2},
  };
  for (const auto& [schedule, seed] : cases) {
    SCOPED_TRACE("schedule=" + schedule + " seed=" + std::to_string(seed));
    ChaosRunConfig config = DiskConfig(schedule, seed);
    config.fsync_policy = FsyncPolicy::kAckBeforeSync;
    const ChaosRunResult result = RunChaosSchedule(config);
    EXPECT_FALSE(result.ok()) << "unsafe ack policy went undetected\n" << result.Describe();
  }
}

// Control 2 — naive recovery: a CRC failure silently truncates the WAL at the
// damage and the node rejoins without suspicion. The amnesiac follower pair
// forms a quorum while the pristine leader is down, and committed entries
// whose replies clients already hold are overwritten.
TEST(DiskChaosTest, NaiveRecoveryControlLosesCommittedEntries) {
  for (const uint64_t seed : {1u, 2u, 4u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ChaosRunConfig config = DiskConfig("disk-corrupt-entry", seed);
    config.wal_recovery = false;
    const ChaosRunResult result = RunChaosSchedule(config);
    EXPECT_FALSE(result.ok()) << "naive recovery went undetected\n" << result.Describe();
  }
}

// Same config, same seed, same run — byte-for-byte. Storage events (fsync
// completions, crash recovery, WAL replay) ride the same deterministic
// simulator timeline as everything else.
TEST(DiskChaosTest, DiskRunsAreDeterministic) {
  for (const std::string& schedule : kDiskSchedules) {
    SCOPED_TRACE("schedule=" + schedule);
    const ChaosRunConfig config = DiskConfig(schedule, 3);
    const ChaosRunResult a = RunChaosSchedule(config);
    const ChaosRunResult b = RunChaosSchedule(config);
    EXPECT_EQ(a.nemesis_events, b.nemesis_events);
    EXPECT_EQ(a.invoked, b.invoked);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.dropped_by_fault, b.dropped_by_fault);
    EXPECT_EQ(a.wal_recoveries, b.wal_recoveries);
    EXPECT_EQ(a.disk_bytes_lost, b.disk_bytes_lost);
    EXPECT_EQ(a.committed_overwritten, b.committed_overwritten);
    EXPECT_EQ(a.node_states, b.node_states);
    EXPECT_EQ(a.linearizability.states_explored, b.linearizability.states_explored);
  }
}

}  // namespace
}  // namespace hovercraft
