// Cluster-level durability tests: power-fail crashes that genuinely lose the
// unsynced WAL suffix, the restart fence on deferred persist acks, suspect
// recovery and its election gate, and exactly-once retries across power
// failures (docs/durability.md).
#include <gtest/gtest.h>

#include <memory>

#include "src/app/synthetic.h"
#include "src/core/cluster.h"
#include "src/loadgen/client.h"
#include "src/loadgen/workload.h"
#include "src/raft/log.h"
#include "src/storage/stable_storage.h"

namespace hovercraft {
namespace {

ClusterConfig Config(ClusterMode mode, int32_t nodes, uint64_t seed) {
  ClusterConfig config;
  config.mode = mode;
  config.nodes = nodes;
  config.seed = seed;
  config.app_factory = []() { return std::make_unique<SyntheticService>(); };
  config.replier_policy = ReplierPolicy::kJbsq;
  config.bounded_queue_depth = 32;
  // Restarted nodes must not livelock elections with a permanently short
  // timeout; restart tests use uniform timeouts throughout this file.
  config.stagger_first_election = false;
  return config;
}

std::unique_ptr<Workload> FastWorkload() {
  SyntheticWorkloadConfig wc;
  wc.service_time = std::make_shared<FixedDistribution>(Micros(1));
  return std::make_unique<SyntheticWorkload>(wc);
}

std::unique_ptr<ClientHost> AttachClient(Cluster& cluster, double rate, uint64_t seed) {
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), cluster.config().costs, [&cluster]() { return cluster.ClientTarget(); },
      FastWorkload(), rate, seed);
  cluster.network().Attach(client.get());
  return client;
}

void EnableRetries(ClientHost* client, Cluster& cluster) {
  ClientHost::RetryPolicy rp;
  rp.enabled = true;
  rp.initial_backoff = Micros(500);
  rp.max_backoff = Millis(8);
  client->set_retry_policy(rp);
  client->set_retry_target([&cluster]() { return cluster.RetryTarget(); });
}

// Corrupts the newest applied non-noop write entry still present in `node`'s
// WAL (the same target rule the disk-corrupt-entry nemesis uses). Returns the
// corrupted index, or 0 if no eligible entry exists.
LogIndex CorruptNewestWrite(Cluster& cluster, NodeId node) {
  auto& server = cluster.server(node);
  const RaftLog& log = server.raft()->log();
  for (LogIndex idx = server.raft()->applied_index(); idx >= log.first_index() && idx > 0;
       --idx) {
    const LogEntry& e = log.At(idx);
    if (!e.noop && !e.read_only && server.storage()->CorruptEntry(idx)) {
      return idx;
    }
  }
  return 0;
}

TEST(DurabilityTest, PowerFailLosesOnlyUnsyncedSuffix) {
  // A power-failed follower restarts from its WAL: the synced prefix is
  // intact (no torn tail, no corruption, not suspect) and the node converges
  // back to the leader's state.
  ClusterConfig config = Config(ClusterMode::kHovercRaft, 3, 111);
  config.raft.persist_latency = Micros(500);
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);
  auto client = AttachClient(cluster, 20'000, 51);

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(200));
  cluster.sim().RunUntil(t0 + Millis(50));
  const NodeId leader = cluster.LeaderId();
  const NodeId victim = (leader + 1) % 3;
  const LogIndex durable_before = cluster.server(victim).raft()->durable_index();
  EXPECT_GT(durable_before, 0u);

  cluster.PowerFailNode(victim);
  cluster.sim().RunUntil(t0 + Millis(70));
  cluster.RestartNode(victim);
  cluster.sim().RunUntil(t0 + Millis(500));

  const auto& st = cluster.server(victim).storage()->stats();
  EXPECT_EQ(st.recoveries, 1u);
  EXPECT_EQ(st.torn_truncations, 0u);
  EXPECT_EQ(st.corrupt_records, 0u);
  EXPECT_EQ(st.suspect_recoveries, 0u);
  EXPECT_FALSE(cluster.server(victim).raft()->suspect());
  // The crash genuinely destroyed the unsynced suffix...
  EXPECT_GT(cluster.server(victim).disk()->stats().bytes_lost, 0u);
  // ...but everything synced survived and the node caught back up.
  ASSERT_NE(cluster.LeaderId(), kInvalidNode);
  EXPECT_EQ(cluster.server(victim).raft()->commit_index(),
            cluster.server(cluster.LeaderId()).raft()->commit_index());
  const uint64_t digest0 = cluster.server(0).app().Digest();
  for (NodeId n = 1; n < 3; ++n) {
    EXPECT_EQ(cluster.server(n).app().Digest(), digest0);
  }
}

TEST(DurabilityTest, NodeKilledInsidePersistWindowNeverAcks) {
  // The deferred AppendEntries ack is fenced on a restart generation: a node
  // killed between the append and the fsync completion must drop the pending
  // ack instead of confirming durability it no longer has.
  ClusterConfig config = Config(ClusterMode::kHovercRaft, 3, 113);
  config.raft.persist_latency = Millis(2);  // wide persist window
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);
  auto client = AttachClient(cluster, 20'000, 53);

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(200));
  cluster.sim().RunUntil(t0 + Millis(50));
  const NodeId leader = cluster.LeaderId();
  const NodeId victim = (leader + 1) % 3;
  // With a 2ms persist window under steady load there is always at least one
  // ack parked behind an in-flight fsync.
  EXPECT_GT(cluster.server(victim).raft()->stats().acks_deferred_persist, 0u);

  // Fail-stop (not power-fail): the disk keeps running, so the in-flight
  // fsync completes and its callback fires into the restart fence — the only
  // thing standing between the dead node and a forged ack.
  cluster.KillNode(victim);
  cluster.sim().RunUntil(t0 + Millis(80));
  EXPECT_GT(cluster.server(victim).raft()->stats().acks_dropped_crash, 0u);

  cluster.RestartNode(victim);
  cluster.sim().RunUntil(t0 + Millis(500));
  ASSERT_NE(cluster.LeaderId(), kInvalidNode);
  EXPECT_EQ(cluster.server(victim).raft()->commit_index(),
            cluster.server(cluster.LeaderId()).raft()->commit_index());
  const uint64_t digest0 = cluster.server(0).app().Digest();
  for (NodeId n = 1; n < 3; ++n) {
    EXPECT_EQ(cluster.server(n).app().Digest(), digest0);
  }
}

TEST(DurabilityTest, ExactlyOnceAcrossFullClusterPowerFail) {
  // Power-fail all three replicas at once, restart them, and let retries
  // drain: every request completes exactly once. Group commit is safe here
  // because acks wait for the fsync — what a client saw confirmed was
  // durable on a quorum before the lights went out.
  ClusterConfig config = Config(ClusterMode::kHovercRaft, 3, 115);
  config.raft.persist_latency = Micros(500);
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);
  auto client = AttachClient(cluster, 20'000, 57);
  EnableRetries(client.get(), cluster);

  const TimeNs t0 = cluster.sim().Now();
  client->SetMeasureWindow(t0, t0 + Millis(200));
  client->StartLoad(t0, t0 + Millis(200));
  cluster.sim().RunUntil(t0 + Millis(50));
  for (NodeId n = 0; n < 3; ++n) {
    cluster.PowerFailNode(n);
  }
  cluster.sim().RunUntil(t0 + Millis(55));
  for (NodeId n = 0; n < 3; ++n) {
    cluster.RestartNode(n);
  }
  cluster.sim().RunUntil(t0 + Millis(800));

  ASSERT_NE(cluster.LeaderId(), kInvalidNode);
  EXPECT_EQ(client->total_completed(), client->total_sent());
  EXPECT_GT(client->total_retransmits(), 0u);
  client->AccountLost(Seconds(1));
  EXPECT_EQ(client->lost_in_window(), 0u);
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(cluster.server(n).server_stats().double_applies, 0u);
    EXPECT_EQ(cluster.server(n).raft()->stats().committed_overwritten, 0u);
  }
  const uint64_t digest0 = cluster.server(0).app().Digest();
  for (NodeId n = 1; n < 3; ++n) {
    EXPECT_EQ(cluster.server(n).app().Digest(), digest0);
  }
}

TEST(DurabilityTest, CorruptedFollowerRecoversSuspectAndGetsRepaired) {
  // Bit-flip a committed entry on a follower's platter, power-fail it, and
  // restart: recovery detects the damage (CRC), cuts the log, marks the node
  // suspect, and the leader's AppendEntries re-fetch repairs it — after which
  // the suspicion clears and the replica converges bit-exactly.
  ClusterConfig config = Config(ClusterMode::kHovercRaft, 3, 117);
  config.raft.persist_latency = Micros(500);
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);
  auto client = AttachClient(cluster, 20'000, 59);

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(200));
  cluster.sim().RunUntil(t0 + Millis(50));
  const NodeId leader = cluster.LeaderId();
  const NodeId victim = (leader + 1) % 3;
  const LogIndex damaged = CorruptNewestWrite(cluster, victim);
  ASSERT_GT(damaged, 0u);
  ASSERT_LE(damaged, cluster.server(victim).raft()->commit_index());

  cluster.PowerFailNode(victim);
  cluster.sim().RunUntil(t0 + Millis(70));
  cluster.RestartNode(victim);

  const auto& st = cluster.server(victim).storage()->stats();
  EXPECT_EQ(st.suspect_recoveries, 1u);
  EXPECT_GT(st.corrupt_records, 0u);

  cluster.sim().RunUntil(t0 + Millis(500));
  // The leader re-sent the damaged suffix and commit caught up past the
  // suspect floor, clearing the suspicion.
  EXPECT_FALSE(cluster.server(victim).raft()->suspect());
  EXPECT_EQ(cluster.server(victim).raft()->stats().suspect_repaired, 1u);
  ASSERT_NE(cluster.LeaderId(), kInvalidNode);
  EXPECT_EQ(cluster.server(victim).raft()->commit_index(),
            cluster.server(cluster.LeaderId()).raft()->commit_index());
  const uint64_t digest0 = cluster.server(0).app().Digest();
  for (NodeId n = 1; n < 3; ++n) {
    EXPECT_EQ(cluster.server(n).app().Digest(), digest0);
  }
}

TEST(DurabilityTest, SuspectPairCannotElectALeaderByThemselves) {
  // Corrupt and power-fail both followers while fail-stopping the leader.
  // The restarted followers form a live majority, but both are suspect:
  // neither may campaign, and neither may endorse a candidate whose log ends
  // below its suspect floor. The cluster must stall leaderless — electing an
  // amnesiac leader could overwrite entries whose replies clients hold —
  // until the pristine leader returns.
  ClusterConfig config = Config(ClusterMode::kHovercRaft, 3, 119);
  config.raft.persist_latency = Micros(500);
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);
  auto client = AttachClient(cluster, 20'000, 61);

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(100));
  cluster.sim().RunUntil(t0 + Millis(50));
  const NodeId leader = cluster.LeaderId();
  const NodeId fa = (leader + 1) % 3;
  const NodeId fb = (leader + 2) % 3;
  ASSERT_GT(CorruptNewestWrite(cluster, fa), 0u);
  ASSERT_GT(CorruptNewestWrite(cluster, fb), 0u);
  cluster.PowerFailNode(fa);
  cluster.PowerFailNode(fb);
  cluster.KillNode(leader);  // fail-stop: disk and memory intact
  cluster.sim().RunUntil(t0 + Millis(52));
  cluster.RestartNode(fa);
  cluster.RestartNode(fb);

  EXPECT_TRUE(cluster.server(fa).raft()->suspect());
  EXPECT_TRUE(cluster.server(fb).raft()->suspect());

  // A long leaderless window: two suspects hold a quorum but refuse to use it.
  cluster.sim().RunUntil(t0 + Millis(250));
  EXPECT_EQ(cluster.LeaderId(), kInvalidNode);
  EXPECT_GT(cluster.server(fa).raft()->stats().campaigns_blocked_suspect +
                cluster.server(fb).raft()->stats().campaigns_blocked_suspect,
            0u);

  cluster.RestartNode(leader);
  const NodeId second = cluster.WaitForLeader(cluster.sim().Now() + Seconds(2));
  ASSERT_NE(second, kInvalidNode);
  cluster.sim().RunUntil(cluster.sim().Now() + Millis(300));
  // The pristine copy repaired both suspects; nothing committed was lost.
  EXPECT_FALSE(cluster.server(fa).raft()->suspect());
  EXPECT_FALSE(cluster.server(fb).raft()->suspect());
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(cluster.server(n).raft()->stats().committed_overwritten, 0u);
  }
  const uint64_t digest0 = cluster.server(0).app().Digest();
  for (NodeId n = 1; n < 3; ++n) {
    EXPECT_EQ(cluster.server(n).app().Digest(), digest0);
  }
}

TEST(DurabilityTest, SessionTableSurvivesPowerFailReplay) {
  // Like FailureTest.SessionTableSurvivesRestart, but through a power fail:
  // the dedup state is rebuilt from the *replayed WAL*, not from surviving
  // memory, and still matches the tables built live on the other replicas.
  ClusterConfig config = Config(ClusterMode::kHovercRaft, 3, 121);
  config.raft.persist_latency = Micros(500);
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);
  auto client = AttachClient(cluster, 20'000, 63);

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(200));
  cluster.sim().RunUntil(t0 + Millis(50));
  const NodeId leader = cluster.LeaderId();
  const NodeId victim = (leader + 1) % 3;
  cluster.PowerFailNode(victim);
  cluster.sim().RunUntil(t0 + Millis(120));
  cluster.RestartNode(victim);
  cluster.sim().RunUntil(t0 + Millis(500));

  ASSERT_NE(cluster.LeaderId(), kInvalidNode);
  ASSERT_EQ(cluster.server(victim).raft()->commit_index(),
            cluster.server(cluster.LeaderId()).raft()->commit_index());
  EXPECT_GT(cluster.server(victim).sessions().client_count(), 0u);
  EXPECT_TRUE(cluster.server(victim).sessions().Executed(RequestId{client->id(), 1}));
  EXPECT_EQ(cluster.server(victim).sessions().AckWatermark(client->id()),
            cluster.server(cluster.LeaderId()).sessions().AckWatermark(client->id()));
}

}  // namespace
}  // namespace hovercraft
