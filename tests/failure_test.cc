// Failure-injection tests at full-stack level: leader crashes under load,
// multicast loss and the recovery path, aggregator failure, follower
// crashes, and the flow-control NACK path (paper sections 5, 6.3, 7.4).
#include <gtest/gtest.h>

#include <memory>

#include "src/app/synthetic.h"
#include "src/core/cluster.h"
#include "src/loadgen/client.h"
#include "src/loadgen/workload.h"

namespace hovercraft {
namespace {

ClusterConfig Config(ClusterMode mode, int32_t nodes, uint64_t seed) {
  ClusterConfig config;
  config.mode = mode;
  config.nodes = nodes;
  config.seed = seed;
  config.app_factory = []() { return std::make_unique<SyntheticService>(); };
  config.replier_policy = ReplierPolicy::kJbsq;
  config.bounded_queue_depth = 32;
  return config;
}

std::unique_ptr<Workload> FastWorkload() {
  SyntheticWorkloadConfig wc;
  wc.service_time = std::make_shared<FixedDistribution>(Micros(1));
  return std::make_unique<SyntheticWorkload>(wc);
}

std::unique_ptr<ClientHost> AttachClient(Cluster& cluster, double rate, uint64_t seed) {
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), cluster.config().costs, [&cluster]() { return cluster.ClientTarget(); },
      FastWorkload(), rate, seed);
  cluster.network().Attach(client.get());
  return client;
}

TEST(FailureTest, HovercraftSurvivesLeaderCrashUnderLoad) {
  Cluster cluster(Config(ClusterMode::kHovercRaft, 3, 61));
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);
  auto client = AttachClient(cluster, 50'000, 3);

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(200));
  cluster.sim().RunUntil(t0 + Millis(50));
  const NodeId first = cluster.LeaderId();
  const uint64_t before_kill = client->total_completed();
  EXPECT_GT(before_kill, 1000u);

  cluster.KillLeader();
  cluster.sim().RunUntil(t0 + Millis(300));

  const NodeId second = cluster.LeaderId();
  ASSERT_NE(second, kInvalidNode);
  EXPECT_NE(second, first);
  // Traffic resumed after failover.
  EXPECT_GT(client->total_completed(), before_kill + 1000u);
  // Survivors agree on state.
  uint64_t digest = 0;
  bool have_digest = false;
  for (NodeId n = 0; n < 3; ++n) {
    if (n == first) {
      continue;
    }
    if (!have_digest) {
      digest = cluster.server(n).app().Digest();
      have_digest = true;
    } else {
      EXPECT_EQ(cluster.server(n).app().Digest(), digest);
    }
  }
}

TEST(FailureTest, HovercraftPPSurvivesLeaderCrash) {
  Cluster cluster(Config(ClusterMode::kHovercRaftPP, 3, 67));
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);
  auto client = AttachClient(cluster, 50'000, 5);

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(300));
  cluster.sim().RunUntil(t0 + Millis(50));
  const uint64_t before_kill = client->total_completed();
  cluster.KillLeader();
  cluster.sim().RunUntil(t0 + Millis(400));
  ASSERT_NE(cluster.LeaderId(), kInvalidNode);
  EXPECT_GT(client->total_completed(), before_kill + 1000u);
  // The aggregator was flushed by the new term and reused.
  EXPECT_GE(cluster.aggregator()->agg_stats().flushes, 1u);
  EXPECT_EQ(cluster.aggregator()->term(),
            cluster.server(cluster.LeaderId()).raft()->term());
}

TEST(FailureTest, FollowerCrashDoesNotStopProgress) {
  Cluster cluster(Config(ClusterMode::kHovercRaft, 3, 71));
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);
  auto client = AttachClient(cluster, 50'000, 7);

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(200));
  cluster.sim().RunUntil(t0 + Millis(50));
  const NodeId leader = cluster.LeaderId();
  const NodeId follower = (leader + 1) % 3;
  cluster.KillNode(follower);
  const uint64_t before = client->total_completed();
  cluster.sim().RunUntil(t0 + Millis(300));
  // Majority alive: the system keeps committing. The dead node may cost up
  // to `bounded_queue_depth` lost replies, no more (paper section 3.4).
  EXPECT_GT(client->total_completed(), before + 1000u);
  EXPECT_EQ(cluster.LeaderId(), leader);
  const uint64_t lost =
      client->total_sent() - client->total_completed();
  EXPECT_LE(lost, 32u + 64u);  // bound + in-flight margin
}

TEST(FailureTest, MulticastLossTriggersRecoveryNotStall) {
  Cluster cluster(Config(ClusterMode::kHovercRaft, 3, 73));
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);
  const NodeId leader = cluster.LeaderId();
  const NodeId starved = (leader + 1) % 3;
  // Drop every multicast client request headed to one follower.
  cluster.network().set_drop_filter([&cluster, starved](const Packet& p, HostId dst) {
    return dst == cluster.server_host(starved) &&
           dynamic_cast<const RpcRequest*>(p.msg.get()) != nullptr;
  });

  auto client = AttachClient(cluster, 20'000, 11);
  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(100));
  cluster.sim().RunUntil(t0 + Millis(250));

  // The starved follower recovered payloads point-to-point and kept up.
  EXPECT_GT(cluster.server(starved).raft()->stats().recoveries_requested, 100u);
  EXPECT_EQ(cluster.server(starved).app().Digest(), cluster.server(leader).app().Digest());
  EXPECT_GT(client->total_completed(), 1000u);
}

TEST(FailureTest, UniformLossDoesNotBreakSafety) {
  Cluster cluster(Config(ClusterMode::kHovercRaft, 3, 79));
  cluster.network().set_loss_probability(0.01);  // 1% of all frames
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);
  auto client = AttachClient(cluster, 50'000, 13);
  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(200));
  cluster.sim().RunUntil(t0 + Millis(400));

  EXPECT_GT(client->total_completed(), 5000u);
  // Convergence despite loss: let retransmissions settle, then compare.
  const uint64_t count0 = cluster.server(0).app().ApplyCount();
  EXPECT_GT(count0, 0u);
  for (NodeId n = 1; n < 3; ++n) {
    EXPECT_EQ(cluster.server(n).app().ApplyCount(), count0);
    EXPECT_EQ(cluster.server(n).app().Digest(), cluster.server(0).app().Digest());
  }
}

TEST(FailureTest, AggregatorCrashFallsBackAndRecovers) {
  Cluster cluster(Config(ClusterMode::kHovercRaftPP, 3, 83));
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);
  auto client = AttachClient(cluster, 30'000, 17);

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(900));
  cluster.sim().RunUntil(t0 + Millis(50));
  const uint64_t before = client->total_completed();
  EXPECT_GT(before, 500u);

  // Kill the aggregator: followers stop hearing append_entries, a new
  // election follows, and the new leader falls back to direct replication
  // when its aggregator probe goes unanswered (paper section 5).
  cluster.aggregator()->set_failed(true);
  cluster.sim().RunUntil(t0 + Millis(500));
  ASSERT_NE(cluster.LeaderId(), kInvalidNode);
  EXPECT_GT(client->total_completed(), before + 1000u);

  // The aggregator comes back; the leader re-probes on heartbeat and
  // switches the fan-out back to the switch.
  const auto forwarded_before = cluster.aggregator()->agg_stats().ae_forwarded;
  cluster.aggregator()->set_failed(false);
  const uint64_t at_revival = client->total_completed();
  cluster.sim().RunUntil(t0 + Millis(900));
  EXPECT_GT(client->total_completed(), at_revival + 1000u);
  EXPECT_GT(cluster.aggregator()->agg_stats().ae_forwarded, forwarded_before);
}

TEST(FailureTest, FlowControlNacksWhenSaturated) {
  ClusterConfig config = Config(ClusterMode::kHovercRaft, 3, 89);
  config.flow_control_threshold = 100;
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);

  // Offer far beyond capacity; the middlebox must shed load instead of
  // letting queues collapse.
  SyntheticWorkloadConfig wc;
  wc.service_time = std::make_shared<FixedDistribution>(Micros(50));
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.costs, [&cluster]() { return cluster.ClientTarget(); },
      std::make_unique<SyntheticWorkload>(wc), 100'000, 19);
  cluster.network().Attach(client.get());
  client->SetMeasureWindow(0, Seconds(1));
  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(100));
  cluster.sim().RunUntil(t0 + Millis(300));

  EXPECT_GT(cluster.flow_control()->nacked(), 100u);
  EXPECT_GT(client->nacked_in_window(), 100u);
  // In-system requests stayed bounded by the threshold.
  EXPECT_LE(cluster.flow_control()->outstanding(), 100);
  // The admitted requests completed.
  EXPECT_GT(client->total_completed(), 1000u);
}

}  // namespace
}  // namespace hovercraft

namespace hovercraft {
namespace {

TEST(FailureTest, VanillaClientsRetargetAfterLeaderChange) {
  // VanillaRaft clients address the leader directly; Cluster::ClientTarget
  // re-resolves it per request, modelling a client-side redirect.
  Cluster cluster(Config(ClusterMode::kVanillaRaft, 3, 91));
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);
  auto client = AttachClient(cluster, 30'000, 23);

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(300));
  cluster.sim().RunUntil(t0 + Millis(50));
  const NodeId first = cluster.LeaderId();
  const uint64_t before = client->total_completed();
  cluster.KillLeader();
  cluster.sim().RunUntil(t0 + Millis(400));

  const NodeId second = cluster.LeaderId();
  ASSERT_NE(second, kInvalidNode);
  ASSERT_NE(second, first);
  EXPECT_GT(client->total_completed(), before + 1000u);
  // The new leader, not the dead one, sends the replies now.
  EXPECT_GT(cluster.server(second).server_stats().replies_sent, 0u);
}

TEST(FailureTest, PersistenceLatencyDelaysCommitNotSafety) {
  ClusterConfig slow = Config(ClusterMode::kHovercRaft, 3, 93);
  slow.raft.persist_latency = Micros(50);
  Cluster cluster(slow);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);
  auto client = AttachClient(cluster, 20'000, 29);
  const TimeNs t0 = cluster.sim().Now();
  client->SetMeasureWindow(t0, t0 + Millis(100));
  client->StartLoad(t0, t0 + Millis(100));
  cluster.sim().RunUntil(t0 + Millis(300));

  EXPECT_GT(client->total_completed(), 1000u);
  // The WAL write shows up in end-to-end latency...
  EXPECT_GT(client->latencies().Percentile(50), Micros(50));
  // ...but replicas still converge.
  const uint64_t digest0 = cluster.server(0).app().Digest();
  for (NodeId n = 1; n < 3; ++n) {
    EXPECT_EQ(cluster.server(n).app().Digest(), digest0);
  }
}

TEST(FailureTest, KillingDeadNodeIsIdempotent) {
  Cluster cluster(Config(ClusterMode::kHovercRaft, 3, 95));
  const NodeId leader = cluster.WaitForLeader();
  ASSERT_NE(leader, kInvalidNode);
  const NodeId follower = (leader + 1) % 3;
  cluster.KillNode(follower);
  EXPECT_EQ(cluster.LiveNodeCount(), 2);
  // Killing the same corpse again changes nothing.
  cluster.KillNode(follower);
  cluster.KillNode(follower);
  EXPECT_EQ(cluster.LiveNodeCount(), 2);
  // The surviving majority still serves traffic.
  auto client = AttachClient(cluster, 20'000, 31);
  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(100));
  cluster.sim().RunUntil(t0 + Millis(150));
  EXPECT_GT(client->total_completed(), 500u);
}

TEST(FailureTest, KillLeaderDuringElectionWindowIsNoOp) {
  Cluster cluster(Config(ClusterMode::kHovercRaft, 3, 97));
  const NodeId first = cluster.WaitForLeader();
  ASSERT_NE(first, kInvalidNode);
  cluster.KillLeader();
  ASSERT_EQ(cluster.LeaderId(), kInvalidNode);
  // No live leader yet: KillLeader resolves to kInvalidNode and must not
  // kill anything (nor crash on the invalid id).
  cluster.KillLeader();
  cluster.KillLeader();
  EXPECT_EQ(cluster.LiveNodeCount(), 2);
  const NodeId second = cluster.WaitForLeader(cluster.sim().Now() + Seconds(2));
  ASSERT_NE(second, kInvalidNode);
  EXPECT_NE(second, first);
}

TEST(FailureTest, MajorityLossStallsThenRestartRecovers) {
  ClusterConfig config = Config(ClusterMode::kHovercRaft, 3, 99);
  // A restarted node must not livelock elections with a permanently short
  // timeout (see ChaosRunConfig); use uniform timeouts for restart tests.
  config.stagger_first_election = false;
  Cluster cluster(config);
  const NodeId first = cluster.WaitForLeader();
  ASSERT_NE(first, kInvalidNode);
  auto client = AttachClient(cluster, 20'000, 37);
  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(400));
  cluster.sim().RunUntil(t0 + Millis(50));
  const uint64_t before = client->total_completed();
  EXPECT_GT(before, 500u);

  // Kill a majority — including the only remaining majority member. The
  // cluster stalls (no quorum, no leader) but the simulation keeps running.
  const NodeId dead_a = first;
  const NodeId dead_b = (first + 1) % 3;
  cluster.KillNode(dead_a);
  cluster.KillNode(dead_b);
  EXPECT_EQ(cluster.LiveNodeCount(), 1);
  cluster.sim().RunUntil(t0 + Millis(150));
  EXPECT_EQ(cluster.LeaderId(), kInvalidNode);
  const uint64_t stalled = client->total_completed();
  cluster.sim().RunUntil(t0 + Millis(200));
  // No quorum: nothing new commits, nothing new completes.
  EXPECT_EQ(client->total_completed(), stalled);

  // Restarting the dead nodes restores quorum; a leader re-emerges and
  // traffic resumes.
  cluster.RestartNode(dead_a);
  cluster.RestartNode(dead_b);
  const NodeId second = cluster.WaitForLeader(cluster.sim().Now() + Seconds(2));
  ASSERT_NE(second, kInvalidNode);
  cluster.sim().RunUntil(t0 + Millis(500));
  EXPECT_GT(client->total_completed(), stalled + 500u);
  // All three replicas — including the two restarted from persistent state —
  // agree byte-for-byte.
  const uint64_t digest0 = cluster.server(0).app().Digest();
  for (NodeId n = 1; n < 3; ++n) {
    EXPECT_EQ(cluster.server(n).app().Digest(), digest0);
  }
}

TEST(FailureTest, RetriesRecoverLeaderCrashExactlyOnce) {
  // With retransmission enabled, requests swallowed by a leader failover are
  // recovered by retries instead of lost — and the session table guarantees
  // none of them executes twice.
  ClusterConfig config = Config(ClusterMode::kHovercRaft, 3, 105);
  config.stagger_first_election = false;
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);

  auto client = AttachClient(cluster, 20'000, 43);
  ClientHost::RetryPolicy rp;
  rp.enabled = true;
  rp.initial_backoff = Micros(500);
  rp.max_backoff = Millis(8);
  client->set_retry_policy(rp);
  client->set_retry_target([&cluster]() { return cluster.RetryTarget(); });

  const TimeNs t0 = cluster.sim().Now();
  client->SetMeasureWindow(t0, t0 + Millis(200));
  client->StartLoad(t0, t0 + Millis(200));
  cluster.sim().RunUntil(t0 + Millis(50));
  cluster.KillLeader();
  cluster.sim().RunUntil(t0 + Millis(500));

  ASSERT_NE(cluster.LeaderId(), kInvalidNode);
  // Every request eventually completed, some only via retransmission.
  EXPECT_EQ(client->total_completed(), client->total_sent());
  EXPECT_GT(client->total_retransmits(), 0u);
  EXPECT_GT(client->completed_after_retry(), 0u);
  client->AccountLost(Seconds(1));
  EXPECT_EQ(client->lost_in_window(), 0u);
  // No request executed twice on any surviving replica.
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(cluster.server(n).server_stats().double_applies, 0u);
  }
}

TEST(FailureTest, SessionTableSurvivesRestart) {
  // A crashed-and-restarted node rebuilds its dedup state from the persisted
  // log, so a retransmission it sees after revival is still deduplicated.
  ClusterConfig config = Config(ClusterMode::kHovercRaft, 3, 107);
  config.stagger_first_election = false;
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);

  auto client = AttachClient(cluster, 20'000, 47);
  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(200));
  cluster.sim().RunUntil(t0 + Millis(50));
  const NodeId leader = cluster.LeaderId();
  const NodeId victim = (leader + 1) % 3;
  cluster.KillNode(victim);
  cluster.sim().RunUntil(t0 + Millis(120));
  cluster.RestartNode(victim);
  cluster.sim().RunUntil(t0 + Millis(500));

  ASSERT_NE(cluster.LeaderId(), kInvalidNode);
  ASSERT_EQ(cluster.server(victim).raft()->commit_index(),
            cluster.server(cluster.LeaderId()).raft()->commit_index());
  // The replayed node's session table matches the ones built live.
  EXPECT_GT(cluster.server(victim).sessions().client_count(), 0u);
  EXPECT_TRUE(cluster.server(victim).sessions().Executed(RequestId{client->id(), 1}));
  EXPECT_EQ(cluster.server(victim).sessions().AckWatermark(client->id()),
            cluster.server(cluster.LeaderId()).sessions().AckWatermark(client->id()));
}

TEST(FailureTest, RestartingLiveNodeIsNoOp) {
  ClusterConfig config = Config(ClusterMode::kHovercRaft, 3, 101);
  config.stagger_first_election = false;
  Cluster cluster(config);
  const NodeId leader = cluster.WaitForLeader();
  ASSERT_NE(leader, kInvalidNode);
  auto client = AttachClient(cluster, 20'000, 41);
  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(100));
  cluster.sim().RunUntil(t0 + Millis(50));
  // Restarting nodes that never failed must not disturb the cluster.
  for (NodeId n = 0; n < 3; ++n) {
    cluster.RestartNode(n);
  }
  EXPECT_EQ(cluster.LiveNodeCount(), 3);
  EXPECT_EQ(cluster.LeaderId(), leader);
  cluster.sim().RunUntil(t0 + Millis(200));
  EXPECT_GT(client->total_completed(), 1000u);
}

}  // namespace
}  // namespace hovercraft
