#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/app/kvstore/command.h"
#include "src/app/kvstore/service.h"
#include "src/app/kvstore/store.h"

namespace hovercraft {
namespace {

// ---------------------------------------------------------------------------
// KvStore data structures
// ---------------------------------------------------------------------------

TEST(KvStoreTest, StringSetGetDel) {
  KvStore store;
  store.Set("k", "v1");
  ASSERT_TRUE(store.Get("k").ok());
  EXPECT_EQ(store.Get("k").value(), "v1");
  store.Set("k", "v2");  // overwrite
  EXPECT_EQ(store.Get("k").value(), "v2");
  EXPECT_TRUE(store.Del("k"));
  EXPECT_FALSE(store.Del("k"));
  EXPECT_EQ(store.Get("k").status().code(), StatusCode::kNotFound);
}

TEST(KvStoreTest, HashOperations) {
  KvStore store;
  ASSERT_TRUE(store.Hset("h", "f1", "a").ok());
  ASSERT_TRUE(store.Hset("h", "f2", "b").ok());
  ASSERT_TRUE(store.Hset("h", "f1", "c").ok());
  EXPECT_EQ(store.Hget("h", "f1").value(), "c");
  EXPECT_EQ(store.Hget("h", "f2").value(), "b");
  EXPECT_EQ(store.Hget("h", "nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Hget("missing", "f").status().code(), StatusCode::kNotFound);
}

TEST(KvStoreTest, WrongTypeErrors) {
  KvStore store;
  store.Set("s", "x");
  EXPECT_EQ(store.Hset("s", "f", "v").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(store.Hget("s", "f").status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(store.Rpush("s", "v").ok());
  EXPECT_FALSE(store.Lrange("s", 0, -1).ok());
  ASSERT_TRUE(store.Hset("h", "f", "v").ok());
  EXPECT_EQ(store.Get("h").status().code(), StatusCode::kFailedPrecondition);
}

TEST(KvStoreTest, ListPushAndRange) {
  KvStore store;
  EXPECT_EQ(store.Rpush("l", "a").value(), 1u);
  EXPECT_EQ(store.Rpush("l", "b").value(), 2u);
  EXPECT_EQ(store.Rpush("l", "c").value(), 3u);
  EXPECT_EQ(store.Lrange("l", 0, -1).value(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(store.Lrange("l", 1, 1).value(), (std::vector<std::string>{"b"}));
  EXPECT_EQ(store.Lrange("l", -2, -1).value(), (std::vector<std::string>{"b", "c"}));
  EXPECT_TRUE(store.Lrange("l", 5, 9).value().empty());
}

TEST(KvStoreTest, ScanTailNewestFirst) {
  KvStore store;
  for (const char* v : {"p1", "p2", "p3", "p4"}) {
    ASSERT_TRUE(store.Rpush("conv", v).ok());
  }
  EXPECT_EQ(store.ScanTail("conv", 2).value(), (std::vector<std::string>{"p4", "p3"}));
  EXPECT_EQ(store.ScanTail("conv", 10).value(),
            (std::vector<std::string>{"p4", "p3", "p2", "p1"}));
  EXPECT_EQ(store.ScanTail("conv", 0).value().size(), 0u);
  EXPECT_EQ(store.ScanTail("missing", 3).status().code(), StatusCode::kNotFound);
}

TEST(KvStoreTest, ContentDigestDetectsDifferences) {
  KvStore a;
  KvStore b;
  EXPECT_EQ(a.ContentDigest(), b.ContentDigest());
  a.Set("k", "v");
  EXPECT_NE(a.ContentDigest(), b.ContentDigest());
  b.Set("k", "v");
  EXPECT_EQ(a.ContentDigest(), b.ContentDigest());
  // List order matters.
  a.Rpush("l", "1");
  a.Rpush("l", "2");
  b.Rpush("l", "2");
  b.Rpush("l", "1");
  EXPECT_NE(a.ContentDigest(), b.ContentDigest());
}

TEST(KvStoreTest, DigestInsensitiveToKeyInsertionOrder) {
  KvStore a;
  KvStore b;
  a.Set("x", "1");
  a.Set("y", "2");
  b.Set("y", "2");
  b.Set("x", "1");
  EXPECT_EQ(a.ContentDigest(), b.ContentDigest());
}

// ---------------------------------------------------------------------------
// Command codec
// ---------------------------------------------------------------------------

TEST(KvCommandTest, RoundTripAllOpcodes) {
  std::vector<KvCommand> commands;
  {
    KvCommand c;
    c.op = KvOpcode::kSet;
    c.key = "k";
    c.value = "v";
    commands.push_back(c);
  }
  {
    KvCommand c;
    c.op = KvOpcode::kGet;
    c.key = "k";
    commands.push_back(c);
  }
  {
    KvCommand c;
    c.op = KvOpcode::kDel;
    c.key = "k";
    commands.push_back(c);
  }
  {
    KvCommand c;
    c.op = KvOpcode::kHset;
    c.key = "h";
    c.field = "f";
    c.value = "v";
    commands.push_back(c);
  }
  {
    KvCommand c;
    c.op = KvOpcode::kHget;
    c.key = "h";
    c.field = "f";
    commands.push_back(c);
  }
  {
    KvCommand c;
    c.op = KvOpcode::kRpush;
    c.key = "l";
    c.value = "item";
    commands.push_back(c);
  }
  {
    KvCommand c;
    c.op = KvOpcode::kLrange;
    c.key = "l";
    c.range_start = -5;
    c.range_stop = -1;
    commands.push_back(c);
  }
  {
    KvCommand c;
    c.op = KvOpcode::kYInsert;
    c.key = "conv:1";
    c.value = std::string(1000, 'x');
    commands.push_back(c);
  }
  {
    KvCommand c;
    c.op = KvOpcode::kYScan;
    c.key = "conv:1";
    c.scan_limit = 10;
    commands.push_back(c);
  }

  for (const KvCommand& cmd : commands) {
    Body body = EncodeKvCommand(cmd);
    Result<KvCommand> decoded = DecodeKvCommand(body);
    ASSERT_TRUE(decoded.ok());
    const KvCommand& d = decoded.value();
    EXPECT_EQ(d.op, cmd.op);
    EXPECT_EQ(d.key, cmd.key);
    EXPECT_EQ(d.field, cmd.field);
    EXPECT_EQ(d.value, cmd.value);
    EXPECT_EQ(d.range_start, cmd.range_start);
    EXPECT_EQ(d.range_stop, cmd.range_stop);
    EXPECT_EQ(d.scan_limit, cmd.scan_limit);
  }
}

TEST(KvCommandTest, ReadOnlyClassification) {
  KvCommand c;
  c.op = KvOpcode::kGet;
  EXPECT_TRUE(c.IsReadOnly());
  c.op = KvOpcode::kYScan;
  EXPECT_TRUE(c.IsReadOnly());
  c.op = KvOpcode::kLrange;
  EXPECT_TRUE(c.IsReadOnly());
  c.op = KvOpcode::kHget;
  EXPECT_TRUE(c.IsReadOnly());
  c.op = KvOpcode::kSet;
  EXPECT_FALSE(c.IsReadOnly());
  c.op = KvOpcode::kYInsert;
  EXPECT_FALSE(c.IsReadOnly());
}

TEST(KvCommandTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeKvCommand(nullptr).ok());
  EXPECT_FALSE(DecodeKvCommand(MakeBody({})).ok());
  EXPECT_FALSE(DecodeKvCommand(MakeBody({0xFF, 0x01})).ok());
}

TEST(KvReplyTest, RoundTrip) {
  KvReply reply;
  reply.status = KvReplyStatus::kOk;
  reply.values = {"a", "", "ccc"};
  Result<KvReply> decoded = DecodeKvReply(EncodeKvReply(reply));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().status, KvReplyStatus::kOk);
  EXPECT_EQ(decoded.value().values, reply.values);
}

// ---------------------------------------------------------------------------
// KvService (StateMachine adapter + cost model)
// ---------------------------------------------------------------------------

RpcRequest MakeKvRequest(const KvCommand& cmd, uint64_t seq) {
  return RpcRequest(RequestId{1, seq},
                    cmd.IsReadOnly() ? R2p2Policy::kReplicatedReqRo : R2p2Policy::kReplicatedReq,
                    EncodeKvCommand(cmd));
}

TEST(KvServiceTest, ExecuteMutatesAndReplies) {
  KvService svc;
  KvCommand set;
  set.op = KvOpcode::kSet;
  set.key = "k";
  set.value = "hello";
  ExecResult r = svc.Execute(MakeKvRequest(set, 1));
  EXPECT_GT(r.service_time, 0);
  EXPECT_EQ(svc.ApplyCount(), 1u);

  KvCommand get;
  get.op = KvOpcode::kGet;
  get.key = "k";
  ExecResult g = svc.Execute(MakeKvRequest(get, 2));
  Result<KvReply> reply = DecodeKvReply(g.reply);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().status, KvReplyStatus::kOk);
  ASSERT_EQ(reply.value().values.size(), 1u);
  EXPECT_EQ(reply.value().values[0], "hello");
  // Read did not change the apply count.
  EXPECT_EQ(svc.ApplyCount(), 1u);
}

TEST(KvServiceTest, InsertCostsMoreThanScan) {
  // The Amdahl shape of Figure 13 depends on INSERT being the expensive,
  // serial (executed-everywhere) operation.
  KvService svc;
  KvCommand insert;
  insert.op = KvOpcode::kYInsert;
  insert.key = "conv:1";
  insert.value = std::string(1000, 'r');
  TimeNs insert_cost = 0;
  svc.Apply(insert, &insert_cost);
  for (int i = 0; i < 20; ++i) {
    svc.Apply(insert);
  }

  KvCommand scan;
  scan.op = KvOpcode::kYScan;
  scan.key = "conv:1";
  scan.scan_limit = 10;
  TimeNs scan_cost = 0;
  KvReply reply = svc.Apply(scan, &scan_cost);
  EXPECT_EQ(reply.values.size(), 10u);
  EXPECT_GT(insert_cost, scan_cost);
  EXPECT_GT(scan_cost, Micros(5));
}

TEST(KvServiceTest, DigestTracksDivergence) {
  KvService a;
  KvService b;
  KvCommand set;
  set.op = KvOpcode::kSet;
  set.key = "k";
  set.value = "v";
  a.Execute(MakeKvRequest(set, 1));
  b.Execute(MakeKvRequest(set, 1));
  EXPECT_EQ(a.Digest(), b.Digest());
  set.value = "other";
  b.Execute(MakeKvRequest(set, 2));
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(KvServiceTest, ScanOnMissingThreadIsNotFoundButCheap) {
  KvService svc;
  KvCommand scan;
  scan.op = KvOpcode::kYScan;
  scan.key = "conv:404";
  scan.scan_limit = 10;
  TimeNs cost = 0;
  KvReply reply = svc.Apply(scan, &cost);
  EXPECT_EQ(reply.status, KvReplyStatus::kNotFound);
  EXPECT_LT(cost, Micros(10));
}

}  // namespace
}  // namespace hovercraft

namespace hovercraft {
namespace {

// ---------------------------------------------------------------------------
// Extended command surface (counters, string ops, sets)
// ---------------------------------------------------------------------------

TEST(KvStoreExtTest, IncrCreatesAndCounts) {
  KvStore store;
  EXPECT_EQ(store.Incr("n").value(), 1);
  EXPECT_EQ(store.Incr("n").value(), 2);
  EXPECT_EQ(store.Incr("n").value(), 3);
  EXPECT_EQ(store.Get("n").value(), "3");
  store.Set("s", "not-a-number");
  EXPECT_FALSE(store.Incr("s").ok());
  store.Rpush("l", "x");
  EXPECT_FALSE(store.Incr("l").ok());
}

TEST(KvStoreExtTest, AppendGrowsString) {
  KvStore store;
  EXPECT_EQ(store.Append("k", "foo").value(), 3u);
  EXPECT_EQ(store.Append("k", "bar").value(), 6u);
  EXPECT_EQ(store.Get("k").value(), "foobar");
}

TEST(KvStoreExtTest, SetnxOnlyFirstWins) {
  KvStore store;
  EXPECT_TRUE(store.Setnx("k", "first").value());
  EXPECT_FALSE(store.Setnx("k", "second").value());
  EXPECT_EQ(store.Get("k").value(), "first");
}

TEST(KvStoreExtTest, HdelRemovesField) {
  KvStore store;
  ASSERT_TRUE(store.Hset("h", "f", "v").ok());
  EXPECT_TRUE(store.Hdel("h", "f").value());
  EXPECT_FALSE(store.Hdel("h", "f").value());
  EXPECT_EQ(store.Hget("h", "f").status().code(), StatusCode::kNotFound);
}

TEST(KvStoreExtTest, LpopAndLlen) {
  KvStore store;
  store.Rpush("l", "a");
  store.Rpush("l", "b");
  EXPECT_EQ(store.Llen("l").value(), 2u);
  EXPECT_EQ(store.Lpop("l").value(), "a");
  EXPECT_EQ(store.Lpop("l").value(), "b");
  EXPECT_EQ(store.Lpop("l").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Llen("missing").value(), 0u);
}

TEST(KvStoreExtTest, SetOperations) {
  KvStore store;
  EXPECT_TRUE(store.Sadd("s", "a").value());
  EXPECT_TRUE(store.Sadd("s", "b").value());
  EXPECT_FALSE(store.Sadd("s", "a").value());  // duplicate
  EXPECT_EQ(store.Scard("s").value(), 2u);
  EXPECT_TRUE(store.Sismember("s", "a").value());
  EXPECT_FALSE(store.Sismember("s", "z").value());
  EXPECT_TRUE(store.Srem("s", "a").value());
  EXPECT_FALSE(store.Srem("s", "a").value());
  EXPECT_EQ(store.Scard("s").value(), 1u);
  EXPECT_FALSE(store.Sismember("missing", "x").value());
  EXPECT_EQ(store.Scard("missing").value(), 0u);
}

TEST(KvStoreExtTest, SetsInDigestAndSnapshot) {
  KvStore a;
  a.Sadd("s", "m1");
  a.Sadd("s", "m2");
  KvStore b;
  b.Sadd("s", "m2");
  b.Sadd("s", "m1");
  EXPECT_EQ(a.ContentDigest(), b.ContentDigest());  // insertion order irrelevant

  BufferWriter w;
  a.SerializeTo(w);
  KvStore c;
  BufferReader r(w.bytes());
  ASSERT_TRUE(c.DeserializeFrom(r).ok());
  EXPECT_EQ(c.ContentDigest(), a.ContentDigest());
  EXPECT_TRUE(c.Sismember("s", "m1").value());
}

TEST(KvCommandExtTest, NewOpcodesRoundTrip) {
  for (KvOpcode op : {KvOpcode::kIncr, KvOpcode::kAppend, KvOpcode::kSetnx, KvOpcode::kExists,
                      KvOpcode::kHdel, KvOpcode::kLpop, KvOpcode::kLlen, KvOpcode::kSadd,
                      KvOpcode::kSrem, KvOpcode::kSismember, KvOpcode::kScard}) {
    KvCommand cmd;
    cmd.op = op;
    cmd.key = "key";
    cmd.field = "field";
    cmd.value = "value";
    Result<KvCommand> decoded = DecodeKvCommand(EncodeKvCommand(cmd));
    ASSERT_TRUE(decoded.ok()) << static_cast<int>(op);
    EXPECT_EQ(decoded.value().op, op);
    EXPECT_EQ(decoded.value().key, "key");
  }
}

TEST(KvCommandExtTest, ReadOnlyClassificationForNewOps) {
  KvCommand c;
  for (KvOpcode op : {KvOpcode::kExists, KvOpcode::kLlen, KvOpcode::kSismember, KvOpcode::kScard}) {
    c.op = op;
    EXPECT_TRUE(c.IsReadOnly()) << static_cast<int>(op);
  }
  for (KvOpcode op : {KvOpcode::kIncr, KvOpcode::kAppend, KvOpcode::kSetnx, KvOpcode::kHdel,
                      KvOpcode::kLpop, KvOpcode::kSadd, KvOpcode::kSrem}) {
    c.op = op;
    EXPECT_FALSE(c.IsReadOnly()) << static_cast<int>(op);
  }
}

TEST(KvServiceExtTest, CounterThroughService) {
  KvService svc;
  KvCommand incr;
  incr.op = KvOpcode::kIncr;
  incr.key = "hits";
  KvReply r1 = svc.Apply(incr);
  KvReply r2 = svc.Apply(incr);
  EXPECT_EQ(r1.values[0], "1");
  EXPECT_EQ(r2.values[0], "2");

  KvCommand exists;
  exists.op = KvOpcode::kExists;
  exists.key = "hits";
  EXPECT_EQ(svc.Apply(exists).values[0], "1");
  exists.key = "nope";
  EXPECT_EQ(svc.Apply(exists).values[0], "0");
}

}  // namespace
}  // namespace hovercraft
