// Tests for the Lancet-like load generator and the experiment harness.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <set>

#include "src/app/synthetic.h"
#include "src/core/cluster.h"
#include "src/loadgen/client.h"
#include "src/loadgen/experiment.h"
#include "src/loadgen/workload.h"

namespace hovercraft {
namespace {

ExperimentConfig QuickExperiment(uint64_t seed = 1) {
  ExperimentConfig config;
  config.cluster.mode = ClusterMode::kUnreplicated;
  config.cluster.nodes = 1;
  config.cluster.seed = seed;
  config.cluster.app_factory = []() { return std::make_unique<SyntheticService>(); };
  config.workload_factory = []() {
    SyntheticWorkloadConfig wc;
    wc.service_time = std::make_shared<FixedDistribution>(Micros(1));
    return std::make_unique<SyntheticWorkload>(wc);
  };
  config.client_count = 2;
  config.warmup = Millis(10);
  config.measure = Millis(50);
  config.drain = Millis(50);
  config.seed = seed;
  return config;
}

TEST(LoadgenTest, AchievedTracksOfferedBelowCapacity) {
  const LoadMetrics m = RunLoadPoint(QuickExperiment(), 100'000);
  EXPECT_NEAR(m.achieved_rps, 100'000, 10'000);
  EXPECT_EQ(m.lost, 0u);
  EXPECT_GT(m.p50_ns, 0);
  EXPECT_GE(m.p99_ns, m.p50_ns);
}

TEST(LoadgenTest, PoissonArrivalsAreOpenLoop) {
  // Offered load far above the 1us-service capacity: an open-loop generator
  // keeps sending and the tail explodes instead of the send count dropping.
  const LoadMetrics m = RunLoadPoint(QuickExperiment(3), 1'500'000);
  EXPECT_GT(m.sent, 60'000u);  // ~1.5M * 50ms
  EXPECT_GT(m.p99_ns, Millis(1));
}

TEST(LoadgenTest, DeterministicAcrossRuns) {
  const LoadMetrics a = RunLoadPoint(QuickExperiment(42), 50'000);
  const LoadMetrics b = RunLoadPoint(QuickExperiment(42), 50'000);
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.p99_ns, b.p99_ns);
  EXPECT_EQ(a.p50_ns, b.p50_ns);
}

TEST(LoadgenTest, SeedChangesRun) {
  const LoadMetrics a = RunLoadPoint(QuickExperiment(1), 50'000);
  const LoadMetrics b = RunLoadPoint(QuickExperiment(2), 50'000);
  EXPECT_NE(a.sent, b.sent);
}

TEST(LoadgenTest, SweepRatesReturnsOnePointPerRate) {
  const auto points = SweepRates(QuickExperiment(), {10'000, 50'000});
  ASSERT_EQ(points.size(), 2u);
  EXPECT_LT(points[0].achieved_rps, points[1].achieved_rps);
}

TEST(LoadgenTest, SloSearchFindsCapacityRegion) {
  // UnRep with S=1us saturates at ~1M RPS; the search must land in the
  // upper half of that and never above it.
  const SloResult r =
      FindMaxThroughputUnderSlo(QuickExperiment(), Micros(500), 100e3, 1'300e3, 6);
  EXPECT_GT(r.max_rps_under_slo, 700e3);
  EXPECT_LE(r.max_rps_under_slo, 1'100e3);
  EXPECT_LE(r.p99_at_max, Micros(500));
}

TEST(LoadgenTest, ClientTracksNacksSeparately) {
  ExperimentConfig config = QuickExperiment(7);
  config.cluster.mode = ClusterMode::kHovercRaft;
  config.cluster.nodes = 3;
  config.cluster.flow_control_threshold = 32;
  config.workload_factory = []() {
    SyntheticWorkloadConfig wc;
    wc.service_time = std::make_shared<FixedDistribution>(Micros(100));
    return std::make_unique<SyntheticWorkload>(wc);
  };
  // Far above the ~10k capacity of S=100us: NACKs must appear.
  const LoadMetrics m = RunLoadPoint(config, 100'000);
  EXPECT_GT(m.nacked, 0u);
  EXPECT_GT(m.completed, 0u);
}

}  // namespace
}  // namespace hovercraft

namespace hovercraft {
namespace {

TEST(LoadgenTest, SloSearchReportsZeroWhenFloorViolates) {
  // S=100us caps the server at ~10k RPS; a floor of 50k already blows the
  // SLO, so the search must report no feasible point instead of guessing.
  ExperimentConfig config = QuickExperiment(11);
  config.workload_factory = []() {
    SyntheticWorkloadConfig wc;
    wc.service_time = std::make_shared<FixedDistribution>(Micros(100));
    return std::make_unique<SyntheticWorkload>(wc);
  };
  const SloResult r = FindMaxThroughputUnderSlo(config, Micros(500), 50e3, 200e3, 4);
  EXPECT_EQ(r.max_rps_under_slo, 0.0);
}

TEST(LoadgenTest, MeasureWindowExcludesWarmupTraffic) {
  ExperimentConfig config = QuickExperiment(13);
  config.warmup = Millis(50);
  config.measure = Millis(50);
  const LoadMetrics m = RunLoadPoint(config, 100'000);
  // Sent-in-window must reflect only the 50ms window, not the 100ms total.
  EXPECT_NEAR(static_cast<double>(m.sent), 100e3 * 0.05, 1500);
}

}  // namespace
}  // namespace hovercraft

// ---------------------------------------------------------------------------
// Exactly-once client machinery: retransmission, duplicate suppression, and
// the abandoned-request accounting.
// ---------------------------------------------------------------------------
namespace hovercraft {
namespace {

// Counts observer callbacks per sequence so a test can assert the "one
// OnInvoke, at most one OnComplete" contract directly.
class CountingObserver final : public ClientHost::Observer {
 public:
  void OnInvoke(HostId, uint64_t seq, R2p2Policy, const Body&, TimeNs) override {
    ++invokes_[seq];
  }
  void OnComplete(HostId, uint64_t seq, const Body&, TimeNs) override {
    ++completes_[seq];
  }
  void OnNack(HostId, uint64_t seq, TimeNs) override { ++nacks_[seq]; }

  const std::map<uint64_t, int>& invokes() const { return invokes_; }
  const std::map<uint64_t, int>& completes() const { return completes_; }
  const std::map<uint64_t, int>& nacks() const { return nacks_; }

 private:
  std::map<uint64_t, int> invokes_;
  std::map<uint64_t, int> completes_;
  std::map<uint64_t, int> nacks_;
};

ClusterConfig UnrepCluster(uint64_t seed) {
  ClusterConfig config;
  config.mode = ClusterMode::kUnreplicated;
  config.nodes = 1;
  config.seed = seed;
  config.app_factory = []() { return std::make_unique<SyntheticService>(); };
  return config;
}

std::unique_ptr<ClientHost> RetryClient(Cluster& cluster, double rate, uint64_t seed) {
  SyntheticWorkloadConfig wc;
  wc.service_time = std::make_shared<FixedDistribution>(Micros(1));
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), cluster.config().costs, [&cluster]() { return cluster.ClientTarget(); },
      std::make_unique<SyntheticWorkload>(wc), rate, seed);
  ClientHost::RetryPolicy rp;
  rp.enabled = true;
  rp.initial_backoff = Micros(200);
  rp.max_backoff = Millis(2);
  client->set_retry_policy(rp);
  client->set_retry_target([&cluster]() { return cluster.RetryTarget(); });
  cluster.network().Attach(client.get());
  return client;
}

TEST(LoadgenTest, RetryRecoversDroppedFirstAttempts) {
  Cluster cluster(UnrepCluster(201));
  // Every first attempt dies on the wire; only retransmissions get through.
  cluster.network().set_drop_filter([](const Packet& p, HostId) {
    const auto* req = dynamic_cast<const RpcRequest*>(p.msg.get());
    return req != nullptr && req->attempt() == 1;
  });
  auto client = RetryClient(cluster, 2'000, 7);
  CountingObserver obs;
  client->set_observer(&obs);

  const TimeNs t0 = cluster.sim().Now();
  client->SetMeasureWindow(t0, t0 + Millis(50));
  client->StartLoad(t0, t0 + Millis(50));
  cluster.sim().RunUntil(t0 + Millis(100));

  EXPECT_GT(client->total_sent(), 50u);
  EXPECT_EQ(client->total_completed(), client->total_sent());
  // Nothing completed on its first transmission.
  EXPECT_EQ(client->completed_after_retry(), client->total_completed());
  EXPECT_GE(client->total_retransmits(), client->total_sent());
  // Every sequence resolved: the ack watermark closed over all of them.
  EXPECT_EQ(client->ack_watermark(), client->total_sent());
  for (const auto& [seq, count] : obs.completes()) {
    EXPECT_EQ(count, 1) << "seq " << seq << " completed more than once";
  }
  EXPECT_EQ(obs.completes().size(), obs.invokes().size());
}

TEST(LoadgenTest, DuplicateRepliesCompleteOnce) {
  Cluster cluster(UnrepCluster(203));
  // The first reply per request is lost, so the client retransmits and the
  // server answers from its session cache — the request must not re-execute
  // and the client must count exactly one completion.
  auto dropped_once = std::make_shared<std::set<uint64_t>>();
  cluster.network().set_drop_filter([dropped_once](const Packet& p, HostId) {
    const auto* resp = dynamic_cast<const RpcResponse*>(p.msg.get());
    if (resp == nullptr) {
      return false;
    }
    return dropped_once->insert(resp->rid().seq).second;  // drop first only
  });
  auto client = RetryClient(cluster, 2'000, 9);
  CountingObserver obs;
  client->set_observer(&obs);

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(50));
  cluster.sim().RunUntil(t0 + Millis(100));

  EXPECT_GT(client->total_sent(), 50u);
  EXPECT_EQ(client->total_completed(), client->total_sent());
  EXPECT_GT(client->total_retransmits(), 0u);
  // The server deduplicated every retransmission instead of re-executing:
  // one application per request, replies served from the cache.
  const ServerStats& stats = cluster.server(0).server_stats();
  EXPECT_GT(stats.dedup_hits, 0u);
  EXPECT_GT(stats.dedup_replies, 0u);
  EXPECT_EQ(stats.double_applies, 0u);
  EXPECT_EQ(cluster.server(0).app().ApplyCount(), client->total_sent());
  for (const auto& [seq, count] : obs.completes()) {
    EXPECT_EQ(count, 1) << "seq " << seq << " completed more than once";
  }
}

TEST(LoadgenTest, AbandonedRequestLateReplyCountedOnce) {
  Cluster cluster(UnrepCluster(205));
  // Replies crawl back 5ms late while the client gives up after 1ms: every
  // request is abandoned first and completed late, exactly once each.
  Cluster* cl = &cluster;
  SyntheticWorkloadConfig wc;
  wc.service_time = std::make_shared<FixedDistribution>(Micros(1));
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), cluster.config().costs, [cl]() { return cl->ClientTarget(); },
      std::make_unique<SyntheticWorkload>(wc), 20'000, 11);
  cluster.network().Attach(client.get());
  cluster.network().SetLinkDelay(cluster.server_host(0), client->id(), Millis(5));
  client->set_outstanding_limit(2, Millis(1));
  CountingObserver obs;
  client->set_observer(&obs);

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(50));
  cluster.sim().RunUntil(t0 + Millis(100));

  // Every request the client gave up on was still answered eventually; the
  // late reply completes it once and never resurrects it.
  EXPECT_GT(client->total_abandoned(), 10u);
  EXPECT_EQ(client->late_completions(), client->total_abandoned());
  EXPECT_EQ(client->total_completed(), client->total_sent());
  for (const auto& [seq, count] : obs.completes()) {
    EXPECT_EQ(count, 1) << "seq " << seq << " completed more than once";
  }
  // With everything resolved, nothing is lost at accounting time.
  client->AccountLost(Seconds(1));
  EXPECT_EQ(client->lost_in_window(), 0u);
}

}  // namespace
}  // namespace hovercraft
