// Tests for the Lancet-like load generator and the experiment harness.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/app/synthetic.h"
#include "src/core/cluster.h"
#include "src/loadgen/client.h"
#include "src/loadgen/experiment.h"
#include "src/loadgen/workload.h"

namespace hovercraft {
namespace {

ExperimentConfig QuickExperiment(uint64_t seed = 1) {
  ExperimentConfig config;
  config.cluster.mode = ClusterMode::kUnreplicated;
  config.cluster.nodes = 1;
  config.cluster.seed = seed;
  config.cluster.app_factory = []() { return std::make_unique<SyntheticService>(); };
  config.workload_factory = []() {
    SyntheticWorkloadConfig wc;
    wc.service_time = std::make_shared<FixedDistribution>(Micros(1));
    return std::make_unique<SyntheticWorkload>(wc);
  };
  config.client_count = 2;
  config.warmup = Millis(10);
  config.measure = Millis(50);
  config.drain = Millis(50);
  config.seed = seed;
  return config;
}

TEST(LoadgenTest, AchievedTracksOfferedBelowCapacity) {
  const LoadMetrics m = RunLoadPoint(QuickExperiment(), 100'000);
  EXPECT_NEAR(m.achieved_rps, 100'000, 10'000);
  EXPECT_EQ(m.lost, 0u);
  EXPECT_GT(m.p50_ns, 0);
  EXPECT_GE(m.p99_ns, m.p50_ns);
}

TEST(LoadgenTest, PoissonArrivalsAreOpenLoop) {
  // Offered load far above the 1us-service capacity: an open-loop generator
  // keeps sending and the tail explodes instead of the send count dropping.
  const LoadMetrics m = RunLoadPoint(QuickExperiment(3), 1'500'000);
  EXPECT_GT(m.sent, 60'000u);  // ~1.5M * 50ms
  EXPECT_GT(m.p99_ns, Millis(1));
}

TEST(LoadgenTest, DeterministicAcrossRuns) {
  const LoadMetrics a = RunLoadPoint(QuickExperiment(42), 50'000);
  const LoadMetrics b = RunLoadPoint(QuickExperiment(42), 50'000);
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.p99_ns, b.p99_ns);
  EXPECT_EQ(a.p50_ns, b.p50_ns);
}

TEST(LoadgenTest, SeedChangesRun) {
  const LoadMetrics a = RunLoadPoint(QuickExperiment(1), 50'000);
  const LoadMetrics b = RunLoadPoint(QuickExperiment(2), 50'000);
  EXPECT_NE(a.sent, b.sent);
}

TEST(LoadgenTest, SweepRatesReturnsOnePointPerRate) {
  const auto points = SweepRates(QuickExperiment(), {10'000, 50'000});
  ASSERT_EQ(points.size(), 2u);
  EXPECT_LT(points[0].achieved_rps, points[1].achieved_rps);
}

TEST(LoadgenTest, SloSearchFindsCapacityRegion) {
  // UnRep with S=1us saturates at ~1M RPS; the search must land in the
  // upper half of that and never above it.
  const SloResult r =
      FindMaxThroughputUnderSlo(QuickExperiment(), Micros(500), 100e3, 1'300e3, 6);
  EXPECT_GT(r.max_rps_under_slo, 700e3);
  EXPECT_LE(r.max_rps_under_slo, 1'100e3);
  EXPECT_LE(r.p99_at_max, Micros(500));
}

TEST(LoadgenTest, ClientTracksNacksSeparately) {
  ExperimentConfig config = QuickExperiment(7);
  config.cluster.mode = ClusterMode::kHovercRaft;
  config.cluster.nodes = 3;
  config.cluster.flow_control_threshold = 32;
  config.workload_factory = []() {
    SyntheticWorkloadConfig wc;
    wc.service_time = std::make_shared<FixedDistribution>(Micros(100));
    return std::make_unique<SyntheticWorkload>(wc);
  };
  // Far above the ~10k capacity of S=100us: NACKs must appear.
  const LoadMetrics m = RunLoadPoint(config, 100'000);
  EXPECT_GT(m.nacked, 0u);
  EXPECT_GT(m.completed, 0u);
}

}  // namespace
}  // namespace hovercraft

namespace hovercraft {
namespace {

TEST(LoadgenTest, SloSearchReportsZeroWhenFloorViolates) {
  // S=100us caps the server at ~10k RPS; a floor of 50k already blows the
  // SLO, so the search must report no feasible point instead of guessing.
  ExperimentConfig config = QuickExperiment(11);
  config.workload_factory = []() {
    SyntheticWorkloadConfig wc;
    wc.service_time = std::make_shared<FixedDistribution>(Micros(100));
    return std::make_unique<SyntheticWorkload>(wc);
  };
  const SloResult r = FindMaxThroughputUnderSlo(config, Micros(500), 50e3, 200e3, 4);
  EXPECT_EQ(r.max_rps_under_slo, 0.0);
}

TEST(LoadgenTest, MeasureWindowExcludesWarmupTraffic) {
  ExperimentConfig config = QuickExperiment(13);
  config.warmup = Millis(50);
  config.measure = Millis(50);
  const LoadMetrics m = RunLoadPoint(config, 100'000);
  // Sent-in-window must reflect only the 50ms window, not the 100ms total.
  EXPECT_NEAR(static_cast<double>(m.sent), 100e3 * 0.05, 1500);
}

}  // namespace
}  // namespace hovercraft
