// Lock service: codec, state-machine semantics, fencing tokens, snapshots,
// and replicated mutual exclusion.
#include <gtest/gtest.h>

#include <memory>

#include "src/app/lock_service.h"
#include "src/core/cluster.h"

namespace hovercraft {
namespace {

LockCommand Cmd(LockOpcode op, const char* lock, const char* owner = "") {
  LockCommand cmd;
  cmd.op = op;
  cmd.lock = lock;
  cmd.owner = owner;
  return cmd;
}

TEST(LockServiceTest, CommandCodecRoundTrip) {
  const LockCommand cmd = Cmd(LockOpcode::kAcquire, "locks/a", "client-1");
  Result<LockCommand> decoded = DecodeLockCommand(EncodeLockCommand(cmd));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().op, LockOpcode::kAcquire);
  EXPECT_EQ(decoded.value().lock, "locks/a");
  EXPECT_EQ(decoded.value().owner, "client-1");
  EXPECT_FALSE(DecodeLockCommand(nullptr).ok());
  EXPECT_FALSE(DecodeLockCommand(MakeBody({9, 0, 0})).ok());
  // Empty lock names are rejected.
  EXPECT_FALSE(DecodeLockCommand(EncodeLockCommand(Cmd(LockOpcode::kAcquire, "", "x"))).ok());
}

TEST(LockServiceTest, ReplyCodecRoundTrip) {
  LockReply reply;
  reply.status = LockReplyStatus::kHolder;
  reply.holder = "client-7";
  reply.fencing_token = 42;
  Result<LockReply> decoded = DecodeLockReply(EncodeLockReply(reply));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().status, LockReplyStatus::kHolder);
  EXPECT_EQ(decoded.value().holder, "client-7");
  EXPECT_EQ(decoded.value().fencing_token, 42u);
}

TEST(LockServiceTest, MutualExclusionAndFencing) {
  LockService svc;
  const LockReply a = svc.Apply(Cmd(LockOpcode::kAcquire, "L", "alice"));
  EXPECT_EQ(a.status, LockReplyStatus::kGranted);
  EXPECT_EQ(a.fencing_token, 1u);

  const LockReply b = svc.Apply(Cmd(LockOpcode::kAcquire, "L", "bob"));
  EXPECT_EQ(b.status, LockReplyStatus::kHeld);
  EXPECT_EQ(b.holder, "alice");

  // Idempotent re-acquisition by the holder returns the SAME token.
  const LockReply a2 = svc.Apply(Cmd(LockOpcode::kAcquire, "L", "alice"));
  EXPECT_EQ(a2.status, LockReplyStatus::kGranted);
  EXPECT_EQ(a2.fencing_token, 1u);

  // Only the holder can release.
  EXPECT_EQ(svc.Apply(Cmd(LockOpcode::kRelease, "L", "bob")).status,
            LockReplyStatus::kNotHolder);
  EXPECT_EQ(svc.Apply(Cmd(LockOpcode::kRelease, "L", "alice")).status,
            LockReplyStatus::kReleased);

  // Next acquisition gets a strictly larger token (zombie-holder defence).
  const LockReply c = svc.Apply(Cmd(LockOpcode::kAcquire, "L", "bob"));
  EXPECT_EQ(c.status, LockReplyStatus::kGranted);
  EXPECT_GT(c.fencing_token, a.fencing_token);
}

TEST(LockServiceTest, GetHolderIsReadOnly) {
  LockService svc;
  svc.Apply(Cmd(LockOpcode::kAcquire, "L", "alice"));
  EXPECT_EQ(svc.Apply(Cmd(LockOpcode::kGetHolder, "L")).status, LockReplyStatus::kHolder);
  EXPECT_EQ(svc.Apply(Cmd(LockOpcode::kGetHolder, "other")).status, LockReplyStatus::kFree);
  EXPECT_TRUE(Cmd(LockOpcode::kGetHolder, "L").IsReadOnly());
  EXPECT_FALSE(Cmd(LockOpcode::kAcquire, "L", "x").IsReadOnly());
}

TEST(LockServiceTest, SnapshotRoundTrip) {
  LockService a;
  a.Apply(Cmd(LockOpcode::kAcquire, "L1", "alice"));
  a.Apply(Cmd(LockOpcode::kAcquire, "L2", "bob"));
  a.Apply(Cmd(LockOpcode::kRelease, "L1", "alice"));

  LockService b;
  ASSERT_TRUE(b.RestoreState(a.SnapshotState()).ok());
  EXPECT_EQ(b.Digest(), a.Digest());
  EXPECT_EQ(b.held_locks(), 1u);
  // Token counter restored: the next acquisition continues the sequence.
  const LockReply from_a = a.Apply(Cmd(LockOpcode::kAcquire, "L3", "x"));
  const LockReply from_b = b.Apply(Cmd(LockOpcode::kAcquire, "L3", "x"));
  EXPECT_EQ(from_a.fencing_token, from_b.fencing_token);
}

// Mutual exclusion as a replicated property: two clients race ACQUIRE
// through the full stack; exactly one wins and all replicas agree.
TEST(LockServiceTest, ReplicatedRaceHasOneWinner) {
  ClusterConfig config;
  config.mode = ClusterMode::kHovercRaftPP;
  config.nodes = 3;
  config.seed = 7;
  config.replier_policy = ReplierPolicy::kJbsq;
  config.app_factory = []() { return std::make_unique<LockService>(); };
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);

  class Racer final : public Host {
   public:
    Racer(Simulator* sim, const CostModel& costs, Cluster* cluster, const char* name)
        : Host(sim, costs, Kind::kServer), cluster_(cluster), name_(name) {}
    void Go() {
      Send(cluster_->ClientTarget(),
           std::make_shared<RpcRequest>(RequestId{id(), 1}, R2p2Policy::kReplicatedReq,
                                        EncodeLockCommand([this]() {
                                          LockCommand c;
                                          c.op = LockOpcode::kAcquire;
                                          c.lock = "L";
                                          c.owner = name_;
                                          return c;
                                        }())));
    }
    void HandleMessage(HostId, const MessagePtr& msg) override {
      if (const auto* resp = dynamic_cast<const RpcResponse*>(msg.get())) {
        auto reply = DecodeLockReply(resp->body());
        ASSERT_TRUE(reply.ok());
        granted = (reply.value().status == LockReplyStatus::kGranted);
        done = true;
      }
    }
    Cluster* cluster_;
    std::string name_;
    bool done = false;
    bool granted = false;
  };

  Racer alice(&cluster.sim(), config.costs, &cluster, "alice");
  Racer bob(&cluster.sim(), config.costs, &cluster, "bob");
  cluster.network().Attach(&alice);
  cluster.network().Attach(&bob);
  cluster.sim().After(Micros(10), [&]() {
    alice.Go();
    bob.Go();
  });
  cluster.sim().RunUntil(Millis(50));

  ASSERT_TRUE(alice.done);
  ASSERT_TRUE(bob.done);
  EXPECT_NE(alice.granted, bob.granted) << "exactly one racer must win";
  const uint64_t digest = cluster.server(0).app().Digest();
  for (NodeId n = 1; n < 3; ++n) {
    EXPECT_EQ(cluster.server(n).app().Digest(), digest);
  }
}

}  // namespace
}  // namespace hovercraft
