// Dynamic membership: live AddServer/RemoveServer reconfiguration across the
// full stack — learner catch-up and promotion, leader step-down on
// self-removal, snapshot-carried configs to fresh learners, one-in-flight
// enforcement, and every layer (multicast, scheduler, aggregator, flow
// control) reacting on config commit. See docs/membership.md.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/app/synthetic.h"
#include "src/core/cluster.h"
#include "src/loadgen/client.h"
#include "src/loadgen/workload.h"
#include "src/raft/membership.h"

namespace hovercraft {
namespace {

ClusterConfig BaseConfig(ClusterMode mode, int32_t nodes, int32_t spares, uint64_t seed) {
  ClusterConfig config;
  config.mode = mode;
  config.nodes = nodes;
  config.spare_nodes = spares;
  config.seed = seed;
  config.app_factory = []() { return std::make_unique<SyntheticService>(); };
  if (mode == ClusterMode::kHovercRaft || mode == ClusterMode::kHovercRaftPP) {
    config.replier_policy = ReplierPolicy::kJbsq;
    config.bounded_queue_depth = 64;
  }
  return config;
}

std::unique_ptr<ClientHost> MakeClient(Cluster& cluster, uint64_t rps, uint64_t seed) {
  SyntheticWorkloadConfig wc;
  wc.request_bytes = 24;
  wc.reply_bytes = 8;
  wc.service_time = std::make_shared<FixedDistribution>(Micros(1));
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), cluster.config().costs, [&cluster]() { return cluster.ClientTarget(); },
      std::make_unique<SyntheticWorkload>(wc), rps, seed);
  cluster.network().Attach(client.get());
  return client;
}

// --- membership config value type -------------------------------------------

TEST(MembershipConfigTest, FactoriesKeepSetsSortedAndDisjoint) {
  auto base = MakeInitialConfig(3);
  EXPECT_EQ(base->voters, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_TRUE(base->learners.empty());
  EXPECT_EQ(base->majority(), 2);

  auto with_learner = WithLearner(*base, 3);
  EXPECT_EQ(with_learner->voters, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(with_learner->learners, (std::vector<NodeId>{3}));
  EXPECT_EQ(with_learner->members, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_TRUE(with_learner->IsLearner(3));
  EXPECT_FALSE(with_learner->IsVoter(3));
  EXPECT_EQ(with_learner->majority(), 2);  // learners do not count

  auto promoted = WithPromoted(*with_learner, 3);
  EXPECT_EQ(promoted->voters, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_TRUE(promoted->learners.empty());
  EXPECT_EQ(promoted->majority(), 3);

  auto removed = WithRemoved(*promoted, 1);
  EXPECT_EQ(removed->voters, (std::vector<NodeId>{0, 2, 3}));
  EXPECT_FALSE(removed->IsMember(1));
  EXPECT_EQ(removed->majority(), 2);
}

// --- add: spare -> learner -> voter -----------------------------------------

class MembershipModesTest : public ::testing::TestWithParam<ClusterMode> {};

TEST_P(MembershipModesTest, AddServerPromotesSpareToVoter) {
  ClusterConfig config = BaseConfig(GetParam(), 3, /*spares=*/1, 41);
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);
  auto client = MakeClient(cluster, 30'000, 11);

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(120));
  cluster.sim().RunUntil(t0 + Millis(20));

  // The spare is passive before the change: no vote, no log.
  EXPECT_FALSE(cluster.IsMember(3));
  EXPECT_EQ(cluster.server(3).raft()->log().last_index(), 0u);

  cluster.AddServer(3);
  cluster.sim().RunUntil(t0 + Millis(250));

  const NodeId leader = cluster.LeaderId();
  ASSERT_NE(leader, kInvalidNode);
  const MembershipConfig& active = cluster.server(leader).raft()->active_config();
  EXPECT_TRUE(active.IsVoter(3)) << active.Describe();
  EXPECT_TRUE(active.learners.empty()) << active.Describe();
  EXPECT_EQ(cluster.Members().size(), 4u);
  EXPECT_GE(cluster.server(leader).raft()->stats().learners_promoted, 1u);
  // Two committed configs: add-as-learner, then promote-to-voter.
  EXPECT_GE(cluster.server(leader).raft()->stats().config_changes_committed, 2u);

  // The new member replicates for real: identical state machine.
  EXPECT_GT(cluster.server(3).app().ApplyCount(), 0u);
  EXPECT_EQ(cluster.server(3).app().Digest(), cluster.server(leader).app().Digest());
}

INSTANTIATE_TEST_SUITE_P(Modes, MembershipModesTest,
                         ::testing::Values(ClusterMode::kHovercRaft, ClusterMode::kHovercRaftPP),
                         [](const ::testing::TestParamInfo<ClusterMode>& info) {
                           return info.param == ClusterMode::kHovercRaft ? "HovercRaft"
                                                                         : "HovercRaftPP";
                         });

// --- remove: follower and leader --------------------------------------------

TEST(MembershipTest, RemoveFollowerShrinksClusterAndRetiresIt) {
  ClusterConfig config = BaseConfig(ClusterMode::kHovercRaft, 3, 0, 43);
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);
  auto client = MakeClient(cluster, 30'000, 13);

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(300));
  cluster.sim().RunUntil(t0 + Millis(20));

  const NodeId leader = cluster.LeaderId();
  const NodeId victim = (leader + 1) % 3;
  cluster.RemoveServer(victim);
  cluster.sim().RunUntil(t0 + Millis(200));

  EXPECT_EQ(cluster.Members().size(), 2u);
  EXPECT_FALSE(cluster.IsMember(victim));
  EXPECT_TRUE(cluster.server(victim).raft()->retired());
  // The shrunk cluster keeps serving: majority is now 1 of... 2 voters.
  const uint64_t before = client->total_completed();
  cluster.sim().RunUntil(t0 + Millis(260));
  EXPECT_GT(client->total_completed(), before);
  // The removed node stopped receiving replication traffic.
  const MembershipConfig& active =
      cluster.server(cluster.LeaderId()).raft()->active_config();
  EXPECT_FALSE(active.IsMember(victim));
  EXPECT_EQ(active.voters.size(), 2u);
}

TEST(MembershipTest, RemoveLeaderStepsDownAfterCommit) {
  ClusterConfig config = BaseConfig(ClusterMode::kHovercRaft, 3, 0, 47);
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);
  auto client = MakeClient(cluster, 30'000, 17);

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(400));
  cluster.sim().RunUntil(t0 + Millis(20));

  const NodeId old_leader = cluster.LeaderId();
  cluster.RemoveServer(old_leader);
  cluster.sim().RunUntil(t0 + Millis(300));

  // The deposed leader retired and someone else leads.
  EXPECT_TRUE(cluster.server(old_leader).raft()->retired());
  const NodeId new_leader = cluster.LeaderId();
  ASSERT_NE(new_leader, kInvalidNode);
  EXPECT_NE(new_leader, old_leader);
  EXPECT_EQ(cluster.Members().size(), 2u);
  EXPECT_FALSE(cluster.IsMember(old_leader));

  // Liveness after the handover.
  const uint64_t before = client->total_completed();
  cluster.sim().RunUntil(t0 + Millis(400));
  EXPECT_GT(client->total_completed(), before);
}

// --- one change in flight ----------------------------------------------------

TEST(MembershipTest, SecondChangeRejectedWhileFirstInFlight) {
  ClusterConfig config = BaseConfig(ClusterMode::kHovercRaft, 3, 2, 53);
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);
  const NodeId leader = cluster.LeaderId();
  RaftNode* raft = cluster.server(leader).raft();

  EXPECT_TRUE(raft->StartAddServer(3));
  EXPECT_TRUE(raft->ConfigChangeInFlight());
  // Dissertation section 4: at most one config entry in flight.
  EXPECT_FALSE(raft->StartAddServer(4));
  EXPECT_FALSE(raft->StartRemoveServer(1));
  // Redundant and nonsensical changes are rejected outright.
  EXPECT_FALSE(raft->StartAddServer(leader));
  EXPECT_FALSE(raft->StartRemoveServer(99));

  // Via the management plane, back-to-back changes retry until both land.
  cluster.AddServer(4);
  cluster.sim().RunUntil(cluster.sim().Now() + Millis(400));
  EXPECT_EQ(cluster.Members().size(), 5u);
  const MembershipConfig& active = cluster.server(cluster.LeaderId()).raft()->active_config();
  EXPECT_TRUE(active.IsVoter(3));
  EXPECT_TRUE(active.IsVoter(4));
}

// --- snapshot-carried config --------------------------------------------------

TEST(MembershipTest, SnapshotCarriesConfigToFreshLearner) {
  ClusterConfig config = BaseConfig(ClusterMode::kHovercRaft, 3, 1, 59);
  // Aggressive compaction: by the time the spare is added, the log prefix
  // (and the initial entries a fresh learner would need) is long gone, so
  // catch-up must go through InstallSnapshot — which must carry the config.
  config.raft.log_retention_entries = 128;
  config.server_template.straggler_lag_entries = 256;
  config.server_template.compaction_interval = Millis(5);
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);
  auto client = MakeClient(cluster, 50'000, 19);

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(200));
  cluster.sim().RunUntil(t0 + Millis(80));

  // The log head is compacted well past a fresh learner's position.
  const NodeId leader = cluster.LeaderId();
  ASSERT_GT(cluster.server(leader).raft()->log().first_index(), 1u);

  cluster.AddServer(3);
  cluster.sim().RunUntil(t0 + Millis(400));

  // Caught up via state transfer, knows the membership, and votes.
  EXPECT_GE(cluster.server(3).server_stats().snapshots_restored, 1u);
  EXPECT_GT(cluster.server(3).raft()->committed_config_idx(), 0u);
  EXPECT_TRUE(cluster.server(3).raft()->active_config().IsMember(3));
  const NodeId final_leader = cluster.LeaderId();
  ASSERT_NE(final_leader, kInvalidNode);
  EXPECT_TRUE(cluster.server(final_leader).raft()->active_config().IsVoter(3));
  EXPECT_EQ(cluster.server(3).app().Digest(), cluster.server(final_leader).app().Digest());
}

// --- flow-control ledger convergence across a config change -------------------

TEST(MembershipTest, LedgerStaysConvergedAcrossReconfiguration) {
  ClusterConfig config = BaseConfig(ClusterMode::kHovercRaft, 3, 1, 61);
  config.flow_control_threshold = 256;
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);
  auto client = MakeClient(cluster, 40'000, 23);

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(150));
  cluster.sim().RunUntil(t0 + Millis(20));
  cluster.AddServer(3);
  cluster.sim().RunUntil(t0 + Millis(60));
  cluster.RemoveServer(1);
  // Let the load finish and drain completely.
  cluster.sim().RunUntil(t0 + Millis(500));

  EXPECT_EQ(cluster.Members().size(), 3u);
  EXPECT_FALSE(cluster.IsMember(1));
  // Every admitted request was repaid: the ledger converged to zero open
  // slots even though repliers joined and left mid-run.
  EXPECT_EQ(cluster.flow_control()->outstanding(), 0);
  EXPECT_EQ(cluster.flow_control()->force_released(), 0u);
  // Exactly-once held throughout.
  for (NodeId n = 0; n < cluster.total_node_count(); ++n) {
    EXPECT_EQ(cluster.server(n).server_stats().double_applies, 0u) << "node " << n;
  }
}

}  // namespace
}  // namespace hovercraft
