#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/host.h"
#include "src/net/network.h"
#include "src/net/packet.h"
#include "src/r2p2/messages.h"

namespace hovercraft {
namespace {

// A host that records everything it receives and can echo.
class EchoHost final : public Host {
 public:
  EchoHost(Simulator* sim, const CostModel& costs, Kind kind = Kind::kServer)
      : Host(sim, costs, kind) {}

  void HandleMessage(HostId src, const MessagePtr& msg) override {
    received.push_back({src, msg, sim()->Now()});
    if (echo) {
      Send(src, msg);
    }
  }

  struct Received {
    HostId src;
    MessagePtr msg;
    TimeNs at;
  };
  std::vector<Received> received;
  bool echo = false;
};

MessagePtr SmallRequest(HostId client, uint64_t seq, int32_t bytes = 24) {
  return std::make_shared<RpcRequest>(RequestId{client, seq}, R2p2Policy::kReplicatedReq,
                                      MakeBody(std::vector<uint8_t>(static_cast<size_t>(bytes))));
}

struct NetFixture {
  Simulator sim;
  CostModel costs;
  Network net{&sim, costs, 1};
};

TEST(NetworkTest, UnicastDelivery) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);

  f.sim.At(0, [&]() { a.Send(b.id(), SmallRequest(a.id(), 1)); });
  f.sim.RunToCompletion();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].src, a.id());
  EXPECT_TRUE(a.received.empty());
}

TEST(NetworkTest, EndToEndLatencyIsPhysical) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);

  f.sim.At(0, [&]() { a.Send(b.id(), SmallRequest(a.id(), 1)); });
  f.sim.RunToCompletion();
  ASSERT_EQ(b.received.size(), 1u);
  // tx cpu + serialization + 2 propagations + switch + rx cpu: single-digit us.
  EXPECT_GT(b.received[0].at, Micros(1));
  EXPECT_LT(b.received[0].at, Micros(10));
}

TEST(NetworkTest, MulticastExcludesSender) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  EchoHost c(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);
  f.net.Attach(&c);
  const Addr group = f.net.CreateMulticastGroup({a.id(), b.id(), c.id()});

  f.sim.At(0, [&]() { a.Send(group, SmallRequest(a.id(), 1)); });
  f.sim.RunToCompletion();
  EXPECT_EQ(a.received.size(), 0u);
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(c.received.size(), 1u);
}

TEST(NetworkTest, MulticastFromNonMemberReachesAll) {
  NetFixture f;
  EchoHost client(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  EchoHost c(&f.sim, f.costs);
  f.net.Attach(&client);
  f.net.Attach(&b);
  f.net.Attach(&c);
  const Addr group = f.net.CreateMulticastGroup({b.id(), c.id()});

  f.sim.At(0, [&]() { client.Send(group, SmallRequest(client.id(), 1)); });
  f.sim.RunToCompletion();
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(c.received.size(), 1u);
}

TEST(NetworkTest, DropFilterTargetsOneDestination) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  EchoHost c(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);
  f.net.Attach(&c);
  const Addr group = f.net.CreateMulticastGroup({a.id(), b.id(), c.id()});
  f.net.set_drop_filter([&](const Packet&, HostId dst) { return dst == b.id(); });

  f.sim.At(0, [&]() { a.Send(group, SmallRequest(a.id(), 1)); });
  f.sim.RunToCompletion();
  EXPECT_EQ(b.received.size(), 0u);
  EXPECT_EQ(c.received.size(), 1u);
  EXPECT_EQ(f.net.dropped_msgs(), 1u);
  EXPECT_EQ(f.net.delivered_msgs(), 1u);
}

TEST(NetworkTest, UniformLossDropsSome) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);
  f.net.set_loss_probability(0.5);

  for (int i = 0; i < 200; ++i) {
    f.sim.At(i * 1000, [&, i]() { a.Send(b.id(), SmallRequest(a.id(), 100 + i)); });
  }
  f.sim.RunToCompletion();
  EXPECT_GT(b.received.size(), 50u);
  EXPECT_LT(b.received.size(), 150u);
}

TEST(NetworkTest, FailedHostNeitherSendsNorReceives) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);

  b.set_failed(true);
  f.sim.At(0, [&]() { a.Send(b.id(), SmallRequest(a.id(), 1)); });
  f.sim.At(1000, [&]() { b.Send(a.id(), SmallRequest(b.id(), 2)); });
  f.sim.RunToCompletion();
  EXPECT_EQ(b.received.size(), 0u);
  EXPECT_EQ(a.received.size(), 0u);
}

TEST(NetworkTest, CountersTrackTraffic) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);
  b.echo = true;

  f.sim.At(0, [&]() { a.Send(b.id(), SmallRequest(a.id(), 1, 512)); });
  f.sim.RunToCompletion();
  EXPECT_EQ(a.counters().tx_msgs, 1u);
  EXPECT_EQ(a.counters().rx_msgs, 1u);
  EXPECT_EQ(b.counters().rx_msgs, 1u);
  EXPECT_EQ(b.counters().tx_msgs, 1u);
  EXPECT_EQ(a.counters().tx_payload_bytes, 512u);
  EXPECT_EQ(a.counters().tx_by_type.at("REQUEST"), 1u);
}

TEST(NetworkTest, DeviceHostForwardsWithFixedLatency) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost dev(&f.sim, f.costs, Host::Kind::kDevice);
  EchoHost c(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&dev);
  f.net.Attach(&c);
  dev.echo = true;  // bounce back to sender

  f.sim.At(0, [&]() { a.Send(dev.id(), SmallRequest(a.id(), 1)); });
  f.sim.RunToCompletion();
  ASSERT_EQ(dev.received.size(), 1u);
  ASSERT_EQ(a.received.size(), 1u);
}

TEST(NetworkTest, NicSerializationThrottlesLargeMessages) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);

  // Send 100 x 6KB back-to-back; the NIC serializes ~5us per message, so the
  // last arrives no earlier than ~500us.
  f.sim.At(0, [&]() {
    for (uint64_t i = 0; i < 100; ++i) {
      a.Send(b.id(), SmallRequest(a.id(), i, 6000));
    }
  });
  f.sim.RunToCompletion();
  ASSERT_EQ(b.received.size(), 100u);
  EXPECT_GT(b.received.back().at, Micros(450));
}

}  // namespace
}  // namespace hovercraft
