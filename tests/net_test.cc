#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/host.h"
#include "src/net/network.h"
#include "src/net/packet.h"
#include "src/r2p2/messages.h"

namespace hovercraft {
namespace {

// A host that records everything it receives and can echo.
class EchoHost final : public Host {
 public:
  EchoHost(Simulator* sim, const CostModel& costs, Kind kind = Kind::kServer)
      : Host(sim, costs, kind) {}

  void HandleMessage(HostId src, const MessagePtr& msg) override {
    received.push_back({src, msg, sim()->Now()});
    if (echo) {
      Send(src, msg);
    }
  }

  struct Received {
    HostId src;
    MessagePtr msg;
    TimeNs at;
  };
  std::vector<Received> received;
  bool echo = false;
};

MessagePtr SmallRequest(HostId client, uint64_t seq, int32_t bytes = 24) {
  return std::make_shared<RpcRequest>(RequestId{client, seq}, R2p2Policy::kReplicatedReq,
                                      MakeBody(std::vector<uint8_t>(static_cast<size_t>(bytes))));
}

struct NetFixture {
  Simulator sim;
  CostModel costs;
  Network net{&sim, costs, 1};
};

TEST(NetworkTest, UnicastDelivery) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);

  f.sim.At(0, [&]() { a.Send(b.id(), SmallRequest(a.id(), 1)); });
  f.sim.RunToCompletion();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].src, a.id());
  EXPECT_TRUE(a.received.empty());
}

TEST(NetworkTest, EndToEndLatencyIsPhysical) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);

  f.sim.At(0, [&]() { a.Send(b.id(), SmallRequest(a.id(), 1)); });
  f.sim.RunToCompletion();
  ASSERT_EQ(b.received.size(), 1u);
  // tx cpu + serialization + 2 propagations + switch + rx cpu: single-digit us.
  EXPECT_GT(b.received[0].at, Micros(1));
  EXPECT_LT(b.received[0].at, Micros(10));
}

TEST(NetworkTest, MulticastExcludesSender) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  EchoHost c(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);
  f.net.Attach(&c);
  const Addr group = f.net.CreateMulticastGroup({a.id(), b.id(), c.id()});

  f.sim.At(0, [&]() { a.Send(group, SmallRequest(a.id(), 1)); });
  f.sim.RunToCompletion();
  EXPECT_EQ(a.received.size(), 0u);
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(c.received.size(), 1u);
}

TEST(NetworkTest, MulticastFromNonMemberReachesAll) {
  NetFixture f;
  EchoHost client(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  EchoHost c(&f.sim, f.costs);
  f.net.Attach(&client);
  f.net.Attach(&b);
  f.net.Attach(&c);
  const Addr group = f.net.CreateMulticastGroup({b.id(), c.id()});

  f.sim.At(0, [&]() { client.Send(group, SmallRequest(client.id(), 1)); });
  f.sim.RunToCompletion();
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(c.received.size(), 1u);
}

TEST(NetworkTest, DropFilterTargetsOneDestination) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  EchoHost c(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);
  f.net.Attach(&c);
  const Addr group = f.net.CreateMulticastGroup({a.id(), b.id(), c.id()});
  f.net.set_drop_filter([&](const Packet&, HostId dst) { return dst == b.id(); });

  f.sim.At(0, [&]() { a.Send(group, SmallRequest(a.id(), 1)); });
  f.sim.RunToCompletion();
  EXPECT_EQ(b.received.size(), 0u);
  EXPECT_EQ(c.received.size(), 1u);
  EXPECT_EQ(f.net.dropped_msgs(), 1u);
  EXPECT_EQ(f.net.delivered_msgs(), 1u);
}

TEST(NetworkTest, UniformLossDropsSome) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);
  f.net.set_loss_probability(0.5);

  for (int i = 0; i < 200; ++i) {
    f.sim.At(i * 1000, [&, i]() { a.Send(b.id(), SmallRequest(a.id(), 100 + i)); });
  }
  f.sim.RunToCompletion();
  EXPECT_GT(b.received.size(), 50u);
  EXPECT_LT(b.received.size(), 150u);
}

TEST(NetworkTest, FailedHostNeitherSendsNorReceives) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);

  b.set_failed(true);
  f.sim.At(0, [&]() { a.Send(b.id(), SmallRequest(a.id(), 1)); });
  f.sim.At(1000, [&]() { b.Send(a.id(), SmallRequest(b.id(), 2)); });
  f.sim.RunToCompletion();
  EXPECT_EQ(b.received.size(), 0u);
  EXPECT_EQ(a.received.size(), 0u);
}

TEST(NetworkTest, CountersTrackTraffic) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);
  b.echo = true;

  f.sim.At(0, [&]() { a.Send(b.id(), SmallRequest(a.id(), 1, 512)); });
  f.sim.RunToCompletion();
  EXPECT_EQ(a.counters().tx_msgs, 1u);
  EXPECT_EQ(a.counters().rx_msgs, 1u);
  EXPECT_EQ(b.counters().rx_msgs, 1u);
  EXPECT_EQ(b.counters().tx_msgs, 1u);
  EXPECT_EQ(a.counters().tx_payload_bytes, 512u);
  EXPECT_EQ(a.counters().tx_by_type.at("REQUEST"), 1u);
}

TEST(NetworkTest, DeviceHostForwardsWithFixedLatency) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost dev(&f.sim, f.costs, Host::Kind::kDevice);
  EchoHost c(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&dev);
  f.net.Attach(&c);
  dev.echo = true;  // bounce back to sender

  f.sim.At(0, [&]() { a.Send(dev.id(), SmallRequest(a.id(), 1)); });
  f.sim.RunToCompletion();
  ASSERT_EQ(dev.received.size(), 1u);
  ASSERT_EQ(a.received.size(), 1u);
}

TEST(NetworkTest, NicSerializationThrottlesLargeMessages) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);

  // Send 100 x 6KB back-to-back; the NIC serializes ~5us per message, so the
  // last arrives no earlier than ~500us.
  f.sim.At(0, [&]() {
    for (uint64_t i = 0; i < 100; ++i) {
      a.Send(b.id(), SmallRequest(a.id(), i, 6000));
    }
  });
  f.sim.RunToCompletion();
  ASSERT_EQ(b.received.size(), 100u);
  EXPECT_GT(b.received.back().at, Micros(450));
}

// ---------------------------------------------------------------------------
// Drop accounting: everything counts per delivered *copy*
// ---------------------------------------------------------------------------

TEST(NetworkTest, MulticastDropsCountPerCopy) {
  // One multicast suppressed for 2 of its 3 destinations adds exactly 2 to
  // dropped_msgs and 1 to delivered_msgs. Pins the per-copy semantics the
  // chaos harness relies on.
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  EchoHost c(&f.sim, f.costs);
  EchoHost d(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);
  f.net.Attach(&c);
  f.net.Attach(&d);
  const Addr group = f.net.CreateMulticastGroup({a.id(), b.id(), c.id(), d.id()});
  f.net.set_drop_filter([&](const Packet&, HostId dst) { return dst != b.id(); });

  f.sim.At(0, [&]() { a.Send(group, SmallRequest(a.id(), 1)); });
  f.sim.RunToCompletion();
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(f.net.delivered_msgs(), 1u);
  EXPECT_EQ(f.net.dropped_msgs(), 2u);
  EXPECT_EQ(f.net.dropped_by_fault(), 0u);  // filter drops are not fault drops
}

TEST(NetworkTest, PartitionDropsCrossGroupCopiesOnly) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  EchoHost c(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);
  f.net.Attach(&c);
  const Addr group = f.net.CreateMulticastGroup({a.id(), b.id(), c.id()});
  // a alone in partition 1; b and c (unlisted) stay in partition 0.
  f.net.SetPartitions({{a.id()}});

  f.sim.At(0, [&]() { a.Send(group, SmallRequest(a.id(), 1)); });   // both copies cut
  f.sim.At(1000, [&]() { b.Send(c.id(), SmallRequest(b.id(), 2)); });  // same side: ok
  f.sim.At(2000, [&]() { b.Send(a.id(), SmallRequest(b.id(), 3)); });  // cross: cut
  f.sim.RunToCompletion();
  EXPECT_TRUE(a.received.empty());
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(c.received.size(), 1u);
  EXPECT_EQ(f.net.dropped_by_fault(), 3u);  // 2 multicast copies + 1 unicast
  EXPECT_EQ(f.net.dropped_msgs(), 3u);

  f.net.HealPartitions();
  f.sim.At(Micros(10), [&]() { a.Send(b.id(), SmallRequest(a.id(), 4)); });
  f.sim.RunToCompletion();
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(f.net.dropped_by_fault(), 3u);  // healed: counter stops moving
}

TEST(NetworkTest, BlockLinkIsOneWay) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);
  f.net.BlockLink(a.id(), b.id());

  f.sim.At(0, [&]() { a.Send(b.id(), SmallRequest(a.id(), 1)); });
  f.sim.At(1000, [&]() { b.Send(a.id(), SmallRequest(b.id(), 2)); });
  f.sim.RunToCompletion();
  EXPECT_TRUE(b.received.empty());        // a -> b cut
  EXPECT_EQ(a.received.size(), 1u);       // b -> a unaffected
  EXPECT_EQ(f.net.dropped_by_fault(), 1u);

  f.net.UnblockLink(a.id(), b.id());
  f.sim.At(Micros(10), [&]() { a.Send(b.id(), SmallRequest(a.id(), 3)); });
  f.sim.RunToCompletion();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(NetworkTest, LinkDelayIsPerDirection) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);
  f.net.SetLinkDelay(a.id(), b.id(), Millis(1));

  f.sim.At(0, [&]() { a.Send(b.id(), SmallRequest(a.id(), 1)); });
  f.sim.At(0, [&]() { b.Send(a.id(), SmallRequest(b.id(), 2)); });
  f.sim.RunToCompletion();
  ASSERT_EQ(b.received.size(), 1u);
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_GT(b.received[0].at, Millis(1));   // delayed direction
  EXPECT_LT(a.received[0].at, Micros(100)); // reverse unaffected

  f.net.SetLinkDelay(a.id(), b.id(), 0);  // 0 clears
  b.received.clear();
  f.sim.At(f.sim.Now(), [&]() { a.Send(b.id(), SmallRequest(a.id(), 3)); });
  const TimeNs before = f.sim.Now();
  f.sim.RunToCompletion();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_LT(b.received[0].at - before, Micros(100));
}

TEST(NetworkTest, ReorderingOvertakesInFlightCopies) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);
  f.net.SetReorder(0.5, Micros(300));

  for (uint64_t i = 0; i < 50; ++i) {
    f.sim.At(static_cast<TimeNs>(i) * Micros(20),
             [&, i]() { a.Send(b.id(), SmallRequest(a.id(), i)); });
  }
  f.sim.RunToCompletion();
  ASSERT_EQ(b.received.size(), 50u);
  bool out_of_order = false;
  for (size_t i = 1; i < b.received.size(); ++i) {
    const auto* prev = dynamic_cast<const RpcRequest*>(b.received[i - 1].msg.get());
    const auto* cur = dynamic_cast<const RpcRequest*>(b.received[i].msg.get());
    if (cur->rid().seq < prev->rid().seq) {
      out_of_order = true;
    }
  }
  EXPECT_TRUE(out_of_order);  // seed 1: deterministic inversion

  f.net.ClearFaults();
  b.received.clear();
  const TimeNs t = f.sim.Now();
  for (uint64_t i = 0; i < 20; ++i) {
    f.sim.At(t + static_cast<TimeNs>(i) * Micros(20),
             [&, i]() { a.Send(b.id(), SmallRequest(a.id(), 100 + i)); });
  }
  f.sim.RunToCompletion();
  for (size_t i = 1; i < b.received.size(); ++i) {
    const auto* prev = dynamic_cast<const RpcRequest*>(b.received[i - 1].msg.get());
    const auto* cur = dynamic_cast<const RpcRequest*>(b.received[i].msg.get());
    EXPECT_LT(prev->rid().seq, cur->rid().seq);  // in order again
  }
}

TEST(NetworkTest, ClearFaultsLeavesLossAndFilterAlone) {
  NetFixture f;
  EchoHost a(&f.sim, f.costs);
  EchoHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);
  f.net.set_drop_filter([](const Packet&, HostId) { return true; });
  f.net.SetPartitions({{a.id()}});
  f.net.ClearFaults();

  // The partition is gone but the test-owned drop filter still applies.
  f.sim.At(0, [&]() { a.Send(b.id(), SmallRequest(a.id(), 1)); });
  f.sim.RunToCompletion();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(f.net.dropped_by_fault(), 0u);
  EXPECT_EQ(f.net.dropped_msgs(), 1u);
}

}  // namespace
}  // namespace hovercraft
