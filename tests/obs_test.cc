// Observability contract tests: the Chrome trace JSON is structurally valid,
// spans balance, timestamps are monotonic, the stage pipeline is covered, the
// outputs are byte-deterministic, and recording a trace does not perturb the
// simulation it observes.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/chaos/runner.h"
#include "src/obs/metrics.h"
#include "src/obs/observability.h"
#include "src/obs/tracer.h"

namespace hovercraft {
namespace {

// Minimal structural JSON check: braces/brackets balance outside string
// literals (escape-aware), the document is one object, and nothing trails it.
bool JsonStructureValid(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  size_t end = std::string::npos;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (end != std::string::npos) {
      if (!std::isspace(static_cast<unsigned char>(c))) return false;  // trailing garbage
      continue;
    }
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        if (stack.empty()) end = i;
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return end != std::string::npos && stack.empty() && !in_string;
}

size_t CountOccurrences(const std::string& text, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// Extracts every "ts":<number> in emission order.
std::vector<double> ExtractTimestamps(const std::string& text) {
  std::vector<double> out;
  const std::string key = "\"ts\":";
  for (size_t pos = text.find(key); pos != std::string::npos;
       pos = text.find(key, pos + key.size())) {
    out.push_back(std::strtod(text.c_str() + pos + key.size(), nullptr));
  }
  return out;
}

ChaosRunConfig SmallChaosConfig() {
  ChaosRunConfig config;
  config.mode = ClusterMode::kHovercRaft;
  config.schedule = "flap";
  config.seed = 3;
  config.nodes = 3;
  config.clients = 2;
  config.rate_rps_per_client = 2'000;
  config.duration = Millis(60);
  config.settle = Millis(60);
  return config;
}

obs::Observability::Options FullObsOptions() {
  obs::Observability::Options oo;
  oo.tracing = true;
  oo.sampling = true;
  return oo;
}

TEST(TracerTest, CapDropsGenericEventsButKeepsStageMarks) {
  obs::Tracer tracer(/*max_events=*/2);
  tracer.Complete(0, 0, "a", 10, 5);
  tracer.Instant(0, 0, "b", 20);
  tracer.Instant(0, 0, "c", 30);  // past the cap: dropped
  EXPECT_EQ(tracer.dropped_events(), 1u);
  RequestId rid{1, 7};
  tracer.MarkStage(rid, obs::Stage::kClientSend, kInvalidNode, 40);
  tracer.MarkStage(rid, obs::Stage::kComplete, kInvalidNode, 50);
  EXPECT_EQ(tracer.event_count(), 4u);  // 2 generic + 2 stage marks
  std::ostringstream out;
  tracer.WriteChromeJson(out);
  EXPECT_TRUE(JsonStructureValid(out.str()));
  EXPECT_NE(out.str().find("client_send"), std::string::npos);
}

TEST(MetricsRegistryTest, DumpHasUniformShapeAndIsDeterministic) {
  obs::MetricsRegistry reg;
  reg.AddCounter("node0/rx", 3);
  reg.SetGauge("node1/depth", -2);
  reg.GetHistogram("lat").Record(1000);
  reg.Sample("node0/q", 100, 1);
  reg.Sample("node0/q", 200, 2);
  std::ostringstream a;
  reg.DumpJson(a);
  std::ostringstream b;
  reg.DumpJson(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_TRUE(JsonStructureValid(a.str()));
  for (const char* section : {"\"counters\"", "\"gauges\"", "\"histograms\"", "\"timeseries\""}) {
    EXPECT_NE(a.str().find(section), std::string::npos) << section;
  }
}

// The satellite contract: a 3-node chaos run yields a structurally valid
// Chrome trace with monotonic timestamps, balanced async begin/end spans and
// marks for every pipeline stage a healthy request passes through.
TEST(ObsChaosTest, TraceSchemaIsValid) {
  obs::Observability bundle(FullObsOptions());
  ChaosRunConfig config = SmallChaosConfig();
  config.obs = &bundle;
  const ChaosRunResult result = RunChaosSchedule(config);
  EXPECT_TRUE(result.ok()) << result.Describe();

  ASSERT_NE(bundle.tracer(), nullptr);
  std::ostringstream out;
  bundle.tracer()->WriteChromeJson(out);
  const std::string trace = out.str();

  EXPECT_TRUE(JsonStructureValid(trace));
  EXPECT_EQ(trace.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);

  // Async request spans balance: every opened span is closed.
  EXPECT_GT(CountOccurrences(trace, "\"ph\":\"b\""), 0u);
  EXPECT_EQ(CountOccurrences(trace, "\"ph\":\"b\""), CountOccurrences(trace, "\"ph\":\"e\""));

  // Events are emitted in non-decreasing timestamp order.
  const std::vector<double> ts = ExtractTimestamps(trace);
  ASSERT_GT(ts.size(), 100u);
  for (size_t i = 1; i < ts.size(); ++i) {
    ASSERT_GE(ts[i], ts[i - 1]) << "at event " << i;
  }

  // Every stage of the healthy pipeline shows up at least once.
  for (const char* stage : {"client_send", "replica_rx", "ordered", "committed", "dispatched",
                            "apply_start", "apply_end", "reply_sent", "complete"}) {
    EXPECT_GT(CountOccurrences(trace, std::string("\"stage\":\"") + stage + "\""), 0u)
        << stage;
  }
  // The nemesis annotations share the trace ("flap" kills and restarts nodes).
  EXPECT_GT(CountOccurrences(trace, "\"name\":\"nemesis\""), 0u);

  // The breakdown report aggregates at least the total row.
  const auto rows = bundle.tracer()->BreakdownRows();
  ASSERT_FALSE(rows.empty());
  bool any_counted = false;
  for (const auto& row : rows) {
    if (row.count > 0) any_counted = true;
  }
  EXPECT_TRUE(any_counted);

  // The metrics snapshot carries the per-node counters and sampled depths.
  std::ostringstream mout;
  bundle.metrics().DumpJson(mout);
  const std::string metrics = mout.str();
  EXPECT_TRUE(JsonStructureValid(metrics));
  for (const char* key : {"node0/raft.commit_index", "node0/net_thread.depth",
                          "node0/server.client_requests"}) {
    EXPECT_NE(metrics.find(key), std::string::npos) << key;
  }
}

// Same seed, same config: both output files are byte-identical across runs.
TEST(ObsChaosTest, OutputsAreByteDeterministic) {
  std::string traces[2];
  std::string metrics[2];
  for (int i = 0; i < 2; ++i) {
    obs::Observability bundle(FullObsOptions());
    ChaosRunConfig config = SmallChaosConfig();
    config.obs = &bundle;
    RunChaosSchedule(config);
    std::ostringstream t;
    bundle.tracer()->WriteChromeJson(t);
    traces[i] = t.str();
    std::ostringstream m;
    bundle.metrics().DumpJson(m);
    metrics[i] = m.str();
  }
  EXPECT_EQ(traces[0], traces[1]);
  EXPECT_EQ(metrics[0], metrics[1]);
}

// Observability is read-only: attaching the bundle must not change a single
// outcome of the simulation it observes.
TEST(ObsChaosTest, TracingDoesNotPerturbTheRun) {
  const ChaosRunResult bare = RunChaosSchedule(SmallChaosConfig());

  obs::Observability bundle(FullObsOptions());
  ChaosRunConfig config = SmallChaosConfig();
  config.obs = &bundle;
  const ChaosRunResult traced = RunChaosSchedule(config);

  EXPECT_EQ(bare.Describe(), traced.Describe());
}

}  // namespace
}  // namespace hovercraft
