// Property-style tests (parameterized sweeps) over the protocol's core
// invariants:
//   - determinism: same seed => byte-identical run outcomes
//   - safety under random loss and random schedules: replicas never diverge
//   - HovercRaft equivalence: the extensions never change the committed
//     history's application result vs. vanilla Raft under the same input
//   - bounded queues: a dead replier costs at most B replies
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "src/app/kvstore/service.h"
#include "src/app/synthetic.h"
#include "src/core/cluster.h"
#include "src/loadgen/client.h"
#include "src/loadgen/experiment.h"
#include "src/loadgen/workload.h"

namespace hovercraft {
namespace {

struct RunOutcome {
  uint64_t completed = 0;
  uint64_t applied = 0;
  uint64_t digest = 0;
  bool converged = false;
};

RunOutcome RunCluster(ClusterMode mode, int32_t nodes, uint64_t seed, double loss,
                      double rate, ReplierPolicy policy, TimeNs extra_settle = Millis(200)) {
  ClusterConfig config;
  config.mode = mode;
  config.nodes = nodes;
  config.seed = seed;
  config.replier_policy = policy;
  config.bounded_queue_depth = 32;
  config.app_factory = []() { return std::make_unique<SyntheticService>(); };

  Cluster cluster(config);
  cluster.network().set_loss_probability(loss);
  if (mode != ClusterMode::kUnreplicated && cluster.WaitForLeader() == kInvalidNode) {
    return RunOutcome{};
  }

  SyntheticWorkloadConfig wc;
  wc.read_only_fraction = 0.5;
  wc.service_time = std::make_shared<FixedDistribution>(Micros(1));
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.costs, [&cluster]() { return cluster.ClientTarget(); },
      std::make_unique<SyntheticWorkload>(wc), rate, seed ^ 0xC11E47ull);
  cluster.network().Attach(client.get());

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(60));
  // Let retransmissions settle so every replica reaches the same commit.
  cluster.network().set_loss_probability(0.0);
  cluster.sim().RunUntil(t0 + Millis(60) + extra_settle);

  RunOutcome out;
  out.completed = client->total_completed();
  out.applied = cluster.server(0).app().ApplyCount();
  out.digest = cluster.server(0).app().Digest();
  out.converged = true;
  for (NodeId n = 1; n < cluster.node_count(); ++n) {
    if (cluster.server(n).app().Digest() != out.digest ||
        cluster.server(n).app().ApplyCount() != out.applied) {
      out.converged = false;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Determinism: identical seeds replay identically.
// ---------------------------------------------------------------------------

class DeterminismTest
    : public ::testing::TestWithParam<std::tuple<ClusterMode, uint64_t>> {};

TEST_P(DeterminismTest, SameSeedSameOutcome) {
  const auto [mode, seed] = GetParam();
  const RunOutcome a = RunCluster(mode, 3, seed, 0.005, 40'000, ReplierPolicy::kJbsq);
  const RunOutcome b = RunCluster(mode, 3, seed, 0.005, 40'000, ReplierPolicy::kJbsq);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.applied, b.applied);
  EXPECT_EQ(a.digest, b.digest);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DeterminismTest,
    ::testing::Combine(::testing::Values(ClusterMode::kHovercRaft, ClusterMode::kHovercRaftPP),
                       ::testing::Values(1u, 17u, 923u)));

// ---------------------------------------------------------------------------
// Safety sweep: random loss rates and seeds never produce divergence.
// ---------------------------------------------------------------------------

class SafetySweepTest
    : public ::testing::TestWithParam<std::tuple<ClusterMode, int32_t, uint64_t, int>> {};

TEST_P(SafetySweepTest, ReplicasNeverDiverge) {
  const auto [mode, nodes, seed, loss_permille] = GetParam();
  const RunOutcome out = RunCluster(mode, nodes, seed, loss_permille / 1000.0, 30'000,
                                    ReplierPolicy::kJbsq, Millis(400));
  EXPECT_TRUE(out.converged) << "mode=" << ClusterModeName(mode) << " nodes=" << nodes
                             << " seed=" << seed << " loss=" << loss_permille << "permille";
  EXPECT_GT(out.applied, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    LossGrid, SafetySweepTest,
    ::testing::Combine(::testing::Values(ClusterMode::kVanillaRaft, ClusterMode::kHovercRaft,
                                         ClusterMode::kHovercRaftPP),
                       ::testing::Values(3, 5), ::testing::Values(11u, 29u),
                       ::testing::Values(0, 5, 20)));

// ---------------------------------------------------------------------------
// Equivalence: for the same client input, all replicated modes apply the
// same number of read-write operations (the digests differ only if ordering
// semantics were violated; with a single client the arrival order is the
// commit order in every mode).
// ---------------------------------------------------------------------------

TEST(EquivalenceTest, AllReplicatedModesApplySameWriteCount) {
  const RunOutcome vanilla =
      RunCluster(ClusterMode::kVanillaRaft, 3, 5, 0.0, 20'000, ReplierPolicy::kLeaderOnly);
  const RunOutcome hovercraft =
      RunCluster(ClusterMode::kHovercRaft, 3, 5, 0.0, 20'000, ReplierPolicy::kJbsq);
  const RunOutcome hovercraftpp =
      RunCluster(ClusterMode::kHovercRaftPP, 3, 5, 0.0, 20'000, ReplierPolicy::kJbsq);
  EXPECT_TRUE(vanilla.converged);
  EXPECT_TRUE(hovercraft.converged);
  EXPECT_TRUE(hovercraftpp.converged);
  // Same client stream (same seed) => same set of writes committed.
  EXPECT_EQ(vanilla.applied, hovercraft.applied);
  EXPECT_EQ(vanilla.applied, hovercraftpp.applied);
}

// ---------------------------------------------------------------------------
// KvStore under replication: every replica's store has identical content.
// ---------------------------------------------------------------------------

class KvReplicationTest : public ::testing::TestWithParam<ClusterMode> {};

TEST_P(KvReplicationTest, StoresConvergeUnderYcsb) {
  ClusterConfig config;
  config.mode = GetParam();
  config.nodes = 3;
  config.seed = 77;
  config.replier_policy = ReplierPolicy::kJbsq;
  config.bounded_queue_depth = 32;
  YcsbEConfig ycsb;
  ycsb.conversation_count = 50;
  ycsb.preload_per_conversation = 2;
  config.app_factory = [ycsb]() {
    auto svc = std::make_unique<KvService>();
    // Identical deterministic preload on every replica.
    Rng rng(424242);
    YcsbEGenerator gen(ycsb);
    for (const KvCommand& cmd : gen.PreloadCommands(rng)) {
      svc->Apply(cmd);
    }
    return svc;
  };

  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.costs, [&cluster]() { return cluster.ClientTarget(); },
      std::make_unique<YcsbEWorkload>(ycsb), 5'000, 31);
  cluster.network().Attach(client.get());
  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(100));
  cluster.sim().RunUntil(t0 + Millis(300));

  EXPECT_GT(client->total_completed(), 200u);
  const auto& store0 = static_cast<const KvService&>(cluster.server(0).app()).store();
  const uint64_t digest0 = store0.ContentDigest();
  EXPECT_GT(store0.key_count(), 0u);
  for (NodeId n = 1; n < 3; ++n) {
    const auto& store = static_cast<const KvService&>(cluster.server(n).app()).store();
    EXPECT_EQ(store.ContentDigest(), digest0) << "node " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, KvReplicationTest,
                         ::testing::Values(ClusterMode::kVanillaRaft, ClusterMode::kHovercRaft,
                                           ClusterMode::kHovercRaftPP),
                         [](const ::testing::TestParamInfo<ClusterMode>& info) {
                           switch (info.param) {
                             case ClusterMode::kVanillaRaft:
                               return "VanillaRaft";
                             case ClusterMode::kHovercRaft:
                               return "HovercRaft";
                             case ClusterMode::kHovercRaftPP:
                               return "HovercRaftPP";
                             default:
                               return "unknown";
                           }
                         });

}  // namespace
}  // namespace hovercraft

namespace hovercraft {
namespace {

// ---------------------------------------------------------------------------
// Sequential-replay equivalence: executing the committed log on a fresh
// state machine reproduces every replica's state exactly — replicated
// execution is indistinguishable from a single sequential server (the SMR
// linearizability contract).
// ---------------------------------------------------------------------------

TEST(ReplayEquivalenceTest, CommittedLogReplaysToSameState) {
  ClusterConfig config;
  config.mode = ClusterMode::kHovercRaftPP;
  config.nodes = 3;
  config.seed = 1234;
  config.replier_policy = ReplierPolicy::kJbsq;
  config.app_factory = []() { return std::make_unique<KvService>(); };
  // Keep the whole log so we can replay it afterwards.
  config.raft.log_retention_entries = 1'000'000;
  config.server_template.straggler_lag_entries = 1'000'000;
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);

  YcsbEConfig ycsb;
  ycsb.conversation_count = 40;
  ycsb.scan_fraction = 0.6;  // plenty of writes so state accumulates
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.costs, [&cluster]() { return cluster.ClientTarget(); },
      std::make_unique<YcsbEWorkload>(ycsb), 10'000, 55);
  cluster.network().Attach(client.get());
  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(100));
  cluster.sim().RunUntil(t0 + Millis(300));
  ASSERT_GT(client->total_completed(), 300u);

  // Replay the committed prefix of the leader's log on a fresh service.
  const NodeId leader = cluster.LeaderId();
  const RaftNode& raft = *cluster.server(leader).raft();
  KvService replay;
  uint64_t replayed = 0;
  for (LogIndex idx = raft.log().first_index(); idx <= raft.commit_index(); ++idx) {
    const LogEntry& entry = raft.log().At(idx);
    if (entry.noop) {
      continue;
    }
    // Replay rule mirrors the read-only optimization: reads touch no state,
    // so skipping them preserves equivalence; writes execute everywhere.
    if (!entry.request->read_only()) {
      replay.Execute(*entry.request);
      ++replayed;
    }
  }
  EXPECT_GT(replayed, 0u);

  // Wait — the replica digests include the mutation digest seeded by rids;
  // the replay applied exactly the same write sequence, so full equality.
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(cluster.server(n).app().Digest(), replay.Digest()) << "node " << n;
    EXPECT_EQ(cluster.server(n).app().ApplyCount(), replay.ApplyCount()) << "node " << n;
  }
}

}  // namespace
}  // namespace hovercraft
