#include <gtest/gtest.h>

#include <vector>

#include "src/common/random.h"
#include "src/r2p2/messages.h"
#include "src/r2p2/packetizer.h"
#include "src/r2p2/request_id.h"
#include "src/r2p2/wire.h"

namespace hovercraft {
namespace {

// ---------------------------------------------------------------------------
// Wire header codec
// ---------------------------------------------------------------------------

WireHeader SampleHeader() {
  WireHeader h;
  h.type = WireType::kRaftReq;
  h.policy = 2;
  h.first = true;
  h.last = false;
  h.req_id = 0xABCD;
  h.packet_id = 7;
  h.src_ip = 0x0A000001;
  h.src_port = 31337;
  h.packet_count = 9;
  return h;
}

TEST(WireTest, HeaderRoundTrip) {
  const WireHeader h = SampleHeader();
  std::vector<uint8_t> buf(kWireHeaderBytes);
  EncodeWireHeader(h, buf);
  Result<WireHeader> decoded = DecodeWireHeader(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), h);
}

TEST(WireTest, AllTypesRoundTrip) {
  for (uint8_t t = 0; t <= static_cast<uint8_t>(WireType::kRecoveryRep); ++t) {
    WireHeader h = SampleHeader();
    h.type = static_cast<WireType>(t);
    std::vector<uint8_t> buf(kWireHeaderBytes);
    EncodeWireHeader(h, buf);
    Result<WireHeader> decoded = DecodeWireHeader(buf);
    ASSERT_TRUE(decoded.ok()) << "type " << static_cast<int>(t);
    EXPECT_EQ(decoded.value().type, h.type);
  }
}

TEST(WireTest, RejectsShortBuffer) {
  std::vector<uint8_t> buf(kWireHeaderBytes - 1);
  EXPECT_FALSE(DecodeWireHeader(buf).ok());
}

TEST(WireTest, RejectsBadMagic) {
  std::vector<uint8_t> buf(kWireHeaderBytes);
  EncodeWireHeader(SampleHeader(), buf);
  buf[0] = 0x00;
  EXPECT_FALSE(DecodeWireHeader(buf).ok());
}

TEST(WireTest, RejectsBadVersion) {
  std::vector<uint8_t> buf(kWireHeaderBytes);
  EncodeWireHeader(SampleHeader(), buf);
  buf[1] = 99;
  EXPECT_FALSE(DecodeWireHeader(buf).ok());
}

TEST(WireTest, RejectsUnknownType) {
  std::vector<uint8_t> buf(kWireHeaderBytes);
  EncodeWireHeader(SampleHeader(), buf);
  buf[2] = 0x7F;
  EXPECT_FALSE(DecodeWireHeader(buf).ok());
}

TEST(WireTest, RejectsUnknownPolicy) {
  std::vector<uint8_t> buf(kWireHeaderBytes);
  EncodeWireHeader(SampleHeader(), buf);
  buf[3] = 0x0F;  // policy nibble = 15
  EXPECT_FALSE(DecodeWireHeader(buf).ok());
}

// ---------------------------------------------------------------------------
// Fragmentation / reassembly
// ---------------------------------------------------------------------------

std::vector<uint8_t> PatternBody(size_t n) {
  std::vector<uint8_t> body(n);
  for (size_t i = 0; i < n; ++i) {
    body[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  return body;
}

TEST(PacketizerTest, SinglePacketMessage) {
  WireHeader h = SampleHeader();
  const std::vector<uint8_t> body = PatternBody(100);
  auto packets = Fragment(h, body, 1436);
  ASSERT_EQ(packets.size(), 1u);

  Reassembler r;
  Result<bool> done = r.Feed(packets[0], 0);
  ASSERT_TRUE(done.ok());
  ASSERT_TRUE(done.value());
  auto complete = r.TakeCompleted();
  EXPECT_EQ(complete.body, body);
  EXPECT_TRUE(complete.header.first);
}

TEST(PacketizerTest, EmptyBodyStillOnePacket) {
  auto packets = Fragment(SampleHeader(), {}, 1436);
  ASSERT_EQ(packets.size(), 1u);
  Result<WireHeader> h = DecodeWireHeader(packets[0]);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h.value().first);
  EXPECT_TRUE(h.value().last);
  EXPECT_EQ(h.value().packet_count, 1);
}

TEST(PacketizerTest, MultiPacketRoundTripInOrder) {
  const std::vector<uint8_t> body = PatternBody(6000);
  auto packets = Fragment(SampleHeader(), body, 1436);
  EXPECT_EQ(packets.size(), 5u);

  Reassembler r;
  for (size_t i = 0; i < packets.size(); ++i) {
    Result<bool> done = r.Feed(packets[i], 0);
    ASSERT_TRUE(done.ok());
    EXPECT_EQ(done.value(), i == packets.size() - 1);
  }
  EXPECT_EQ(r.TakeCompleted().body, body);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(PacketizerTest, OutOfOrderReassembly) {
  const std::vector<uint8_t> body = PatternBody(4000);
  auto packets = Fragment(SampleHeader(), body, 1436);
  ASSERT_EQ(packets.size(), 3u);

  Reassembler r;
  ASSERT_TRUE(r.Feed(packets[2], 0).ok());
  ASSERT_TRUE(r.Feed(packets[0], 0).ok());
  Result<bool> done = r.Feed(packets[1], 0);
  ASSERT_TRUE(done.ok());
  ASSERT_TRUE(done.value());
  EXPECT_EQ(r.TakeCompleted().body, body);
}

TEST(PacketizerTest, DuplicateFragmentsIgnored) {
  const std::vector<uint8_t> body = PatternBody(3000);
  auto packets = Fragment(SampleHeader(), body, 1436);

  Reassembler r;
  ASSERT_TRUE(r.Feed(packets[0], 0).ok());
  ASSERT_TRUE(r.Feed(packets[0], 0).ok());  // dup
  ASSERT_TRUE(r.Feed(packets[1], 0).ok());
  Result<bool> done = r.Feed(packets[2], 0);
  ASSERT_TRUE(done.ok());
  ASSERT_TRUE(done.value());
  EXPECT_EQ(r.TakeCompleted().body, body);
}

TEST(PacketizerTest, InterleavedMessagesFromDifferentSenders) {
  const std::vector<uint8_t> body_a = PatternBody(3000);
  WireHeader ha = SampleHeader();
  ha.src_port = 1;
  WireHeader hb = SampleHeader();
  hb.src_port = 2;
  auto pa = Fragment(ha, body_a, 1436);
  const std::vector<uint8_t> body_b = PatternBody(2000);
  auto pb = Fragment(hb, body_b, 1436);

  Reassembler r;
  ASSERT_TRUE(r.Feed(pa[0], 0).ok());
  ASSERT_TRUE(r.Feed(pb[0], 0).ok());
  ASSERT_TRUE(r.Feed(pa[1], 0).ok());
  Result<bool> done_b = r.Feed(pb[1], 0);
  ASSERT_TRUE(done_b.ok());
  ASSERT_TRUE(done_b.value());
  EXPECT_EQ(r.TakeCompleted().body, body_b);
  Result<bool> done_a = r.Feed(pa[2], 0);
  ASSERT_TRUE(done_a.ok());
  ASSERT_TRUE(done_a.value());
  EXPECT_EQ(r.TakeCompleted().body, body_a);
}

TEST(PacketizerTest, GarbageCollectDropsStale) {
  const std::vector<uint8_t> body = PatternBody(3000);
  auto packets = Fragment(SampleHeader(), body, 1436);

  Reassembler r;
  ASSERT_TRUE(r.Feed(packets[0], /*now=*/0).ok());
  EXPECT_EQ(r.pending(), 1u);
  EXPECT_EQ(r.GarbageCollect(Millis(10), Millis(50)), 0u);
  EXPECT_EQ(r.GarbageCollect(Millis(60), Millis(50)), 1u);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(PacketizerTest, RejectsFragmentIndexBeyondCount) {
  const std::vector<uint8_t> body = PatternBody(3000);
  auto packets = Fragment(SampleHeader(), body, 1436);
  // Corrupt packet 1's packet_id to an out-of-range index.
  Reassembler r;
  ASSERT_TRUE(r.Feed(packets[0], 0).ok());
  WireHeader bad = SampleHeader();
  bad.first = false;
  bad.last = false;
  bad.packet_id = 40;
  std::vector<uint8_t> pkt(kWireHeaderBytes + 10);
  EncodeWireHeader(bad, pkt);
  EXPECT_FALSE(r.Feed(pkt, 0).ok());
}

// Regression (reviewer repro): fragments with out-of-range ids that arrive
// before FIRST must not count toward completion — otherwise a message can
// "complete" with real fragments absent, leaking recycled pool memory.
TEST(PacketizerTest, RejectsPreFirstFragmentBeyondDeclaredCount) {
  const std::vector<uint8_t> body = PatternBody(44);  // 6 fragments at mtu 8
  auto packets = Fragment(SampleHeader(), body, 8);
  ASSERT_EQ(packets.size(), 6u);

  Reassembler r;
  ASSERT_TRUE(r.Feed(packets[5], 0).ok());  // LAST(5) before FIRST
  // Bogus fragments 7 and 8: in-range checks are impossible until FIRST.
  for (uint16_t id : {uint16_t{7}, uint16_t{8}}) {
    WireHeader bogus = SampleHeader();
    bogus.first = false;
    bogus.last = false;
    bogus.packet_id = id;
    std::vector<uint8_t> pkt(kWireHeaderBytes + 8);
    EncodeWireHeader(bogus, pkt);
    ASSERT_TRUE(r.Feed(pkt, 0).ok());
  }
  // FIRST reveals packet_count = 6: the buffered ids 7/8 are impossible, so
  // the whole partial is rejected rather than left able to complete short.
  EXPECT_FALSE(r.Feed(packets[0], 0).ok());
  EXPECT_EQ(r.pending(), 0u);
  // Real fragments 1 and 2 must not now complete the dropped message.
  ASSERT_TRUE(r.Feed(packets[1], 0).ok());
  Result<bool> done = r.Feed(packets[2], 0);
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(done.value());
  // A clean retransmission round still reassembles correctly.
  Reassembler clean;
  for (size_t i = 0; i < packets.size(); ++i) {
    Result<bool> fed = clean.Feed(packets[i], 0);
    ASSERT_TRUE(fed.ok());
    EXPECT_EQ(fed.value(), i == packets.size() - 1);
  }
  EXPECT_EQ(clean.TakeCompleted().body, body);
}

TEST(PacketizerTest, RejectsPreFirstLastAtWrongIndex) {
  Reassembler r;
  // LAST at index 2 arrives before FIRST.
  WireHeader last = SampleHeader();
  last.first = false;
  last.last = true;
  last.packet_id = 2;
  std::vector<uint8_t> last_pkt(kWireHeaderBytes + 4);
  EncodeWireHeader(last, last_pkt);
  ASSERT_TRUE(r.Feed(last_pkt, 0).ok());
  // FIRST then declares 6 fragments: index 2 cannot be the final one.
  WireHeader first = SampleHeader();
  first.first = true;
  first.last = false;
  first.packet_id = 0;
  first.packet_count = 6;
  std::vector<uint8_t> first_pkt(kWireHeaderBytes + 8);
  EncodeWireHeader(first, first_pkt);
  EXPECT_FALSE(r.Feed(first_pkt, 0).ok());
  EXPECT_EQ(r.pending(), 0u);
}

// Regression: a single-fragment FIRST|LAST message must erase a stale partial
// buffered under the same key, so fragments of an earlier multi-fragment
// attempt cannot later combine with retransmits into a duplicate completion.
TEST(PacketizerTest, SingleFragmentSupersedesStalePartial) {
  const std::vector<uint8_t> multi_body = PatternBody(3000);
  auto multi = Fragment(SampleHeader(), multi_body, 1436);
  ASSERT_EQ(multi.size(), 3u);
  const std::vector<uint8_t> single_body = PatternBody(80);
  auto single = Fragment(SampleHeader(), single_body, 1436);
  ASSERT_EQ(single.size(), 1u);

  Reassembler r;
  ASSERT_TRUE(r.Feed(multi[0], 0).ok());
  EXPECT_EQ(r.pending(), 1u);
  Result<bool> done = r.Feed(single[0], 0);
  ASSERT_TRUE(done.ok());
  ASSERT_TRUE(done.value());
  EXPECT_EQ(r.TakeCompleted().body, single_body);
  EXPECT_EQ(r.pending(), 0u);
  // The stale FIRST is gone: remaining fragments of the old attempt cannot
  // complete a second message.
  ASSERT_TRUE(r.Feed(multi[1], 0).ok());
  Result<bool> tail = r.Feed(multi[2], 0);
  ASSERT_TRUE(tail.ok());
  EXPECT_FALSE(tail.value());
}

// ---------------------------------------------------------------------------
// Message types
// ---------------------------------------------------------------------------

TEST(MessagesTest, RequestCarriesMetadata) {
  auto body = MakeBody(std::vector<uint8_t>(24));
  RpcRequest req(RequestId{3, 99}, R2p2Policy::kReplicatedReqRo, body);
  EXPECT_EQ(req.PayloadBytes(), 24);
  EXPECT_TRUE(req.read_only());
  EXPECT_EQ(req.rid().client, 3);
  EXPECT_EQ(req.rid().seq, 99u);
  EXPECT_STREQ(req.Name(), "REQUEST");
}

TEST(MessagesTest, ResponseAndControlSizes) {
  RpcResponse resp(RequestId{1, 2}, MakeBody(std::vector<uint8_t>(6000)));
  EXPECT_EQ(resp.PayloadBytes(), 6000);
  FeedbackMsg fb(RequestId{1, 2});
  NackMsg nack(RequestId{1, 2});
  EXPECT_EQ(fb.PayloadBytes(), 16);
  EXPECT_EQ(nack.PayloadBytes(), 16);
}

TEST(MessagesTest, RequestIdHashAndEquality) {
  RequestId a{1, 7};
  RequestId b{1, 7};
  RequestId c{2, 7};
  RequestId d{1, 8};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  RequestIdHash hash;
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_NE(hash(a), hash(c));
}

}  // namespace
}  // namespace hovercraft
