#include <gtest/gtest.h>

#include <memory>

#include "src/raft/log.h"

namespace hovercraft {
namespace {

LogEntry MakeEntry(Term term, HostId client, uint64_t seq, bool read_only = false) {
  LogEntry e;
  e.term = term;
  e.read_only = read_only;
  e.rid = RequestId{client, seq};
  e.request = std::make_shared<RpcRequest>(e.rid, R2p2Policy::kReplicatedReq,
                                           MakeBody(std::vector<uint8_t>(24)));
  return e;
}

LogEntry Noop(Term term) {
  LogEntry e;
  e.term = term;
  e.noop = true;
  return e;
}

TEST(RaftLogTest, EmptyLog) {
  RaftLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.first_index(), 1u);
  EXPECT_EQ(log.last_index(), 0u);
  EXPECT_EQ(log.last_term(), 0u);
  EXPECT_EQ(log.TermAt(0), 0u);
  EXPECT_FALSE(log.Contains(1));
}

TEST(RaftLogTest, AppendAssignsSequentialIndices) {
  RaftLog log;
  EXPECT_EQ(log.Append(MakeEntry(1, 1, 1)), 1u);
  EXPECT_EQ(log.Append(MakeEntry(1, 1, 2)), 2u);
  EXPECT_EQ(log.Append(MakeEntry(2, 1, 3)), 3u);
  EXPECT_EQ(log.last_index(), 3u);
  EXPECT_EQ(log.last_term(), 2u);
  EXPECT_EQ(log.TermAt(1), 1u);
  EXPECT_EQ(log.TermAt(3), 2u);
  EXPECT_TRUE(log.Contains(1));
  EXPECT_TRUE(log.Contains(3));
  EXPECT_FALSE(log.Contains(4));
}

TEST(RaftLogTest, FindRequestByRid) {
  RaftLog log;
  log.Append(MakeEntry(1, 5, 100));
  log.Append(Noop(1));
  log.Append(MakeEntry(1, 5, 101));
  EXPECT_EQ(log.FindRequest(RequestId{5, 100}), 1u);
  EXPECT_EQ(log.FindRequest(RequestId{5, 101}), 3u);
  EXPECT_EQ(log.FindRequest(RequestId{5, 999}), kNoLogIndex);
}

TEST(RaftLogTest, TruncateRemovesSuffixAndRidIndex) {
  RaftLog log;
  log.Append(MakeEntry(1, 1, 1));
  log.Append(MakeEntry(1, 1, 2));
  log.Append(MakeEntry(1, 1, 3));
  log.TruncateFrom(2);
  EXPECT_EQ(log.last_index(), 1u);
  EXPECT_EQ(log.FindRequest(RequestId{1, 2}), kNoLogIndex);
  EXPECT_EQ(log.FindRequest(RequestId{1, 3}), kNoLogIndex);
  EXPECT_EQ(log.FindRequest(RequestId{1, 1}), 1u);
  // Re-append after truncation continues from the new tail.
  EXPECT_EQ(log.Append(MakeEntry(2, 1, 4)), 2u);
  EXPECT_EQ(log.TermAt(2), 2u);
}

TEST(RaftLogTest, CompactPrefixKeepsTailAndBaseTerm) {
  RaftLog log;
  for (uint64_t i = 1; i <= 10; ++i) {
    log.Append(MakeEntry(i <= 5 ? 1 : 2, 1, i));
  }
  log.CompactPrefix(6);
  EXPECT_EQ(log.first_index(), 7u);
  EXPECT_EQ(log.last_index(), 10u);
  EXPECT_EQ(log.base_term(), 2u);   // term of entry 6
  EXPECT_EQ(log.TermAt(6), 2u);     // the compaction point keeps its term
  EXPECT_FALSE(log.Contains(6));
  EXPECT_TRUE(log.Contains(7));
  EXPECT_EQ(log.At(7).rid.seq, 7u);
  // Compacted rids are forgotten.
  EXPECT_EQ(log.FindRequest(RequestId{1, 3}), kNoLogIndex);
  EXPECT_EQ(log.FindRequest(RequestId{1, 8}), 8u);
}

TEST(RaftLogTest, CompactIsIdempotentAndMonotone) {
  RaftLog log;
  for (uint64_t i = 1; i <= 5; ++i) {
    log.Append(MakeEntry(1, 1, i));
  }
  log.CompactPrefix(3);
  log.CompactPrefix(2);  // below the base: no-op
  EXPECT_EQ(log.first_index(), 4u);
  log.CompactPrefix(5);
  EXPECT_EQ(log.first_index(), 6u);
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.last_index(), 5u);
  EXPECT_EQ(log.last_term(), 1u);  // falls back to base term
  // Appending after full compaction continues the sequence.
  EXPECT_EQ(log.Append(MakeEntry(2, 1, 6)), 6u);
}

TEST(RaftLogTest, TruncateAfterCompaction) {
  RaftLog log;
  for (uint64_t i = 1; i <= 6; ++i) {
    log.Append(MakeEntry(1, 1, i));
  }
  log.CompactPrefix(2);
  log.TruncateFrom(5);
  EXPECT_EQ(log.last_index(), 4u);
  EXPECT_EQ(log.first_index(), 3u);
  EXPECT_TRUE(log.Contains(3));
  EXPECT_FALSE(log.Contains(5));
}

TEST(RaftLogTest, NoopEntriesHaveNoRid) {
  RaftLog log;
  log.Append(Noop(1));
  EXPECT_EQ(log.At(1).request, nullptr);
  EXPECT_TRUE(log.At(1).noop);
}

}  // namespace
}  // namespace hovercraft
