// Unit tests for the Raft engine against a minimal in-memory harness: a
// zero-cost message fabric with drop filters and instant state machines.
// These pin down algorithm behaviour (elections, log repair, recovery)
// independently of the network cost model.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/buffer.h"
#include "src/raft/node.h"
#include "src/sim/simulator.h"

namespace hovercraft {
namespace {

constexpr TimeNs kHop = Micros(2);

class MiniHarness;

class MiniEnv final : public RaftNode::Env {
 public:
  MiniEnv(MiniHarness* harness, NodeId self) : harness_(harness), self_(self) {}

  void SendToPeer(NodeId peer, MessagePtr msg) override;
  void SendToAggregator(MessagePtr /*msg*/) override {}

  std::shared_ptr<const RpcRequest> LookupUnordered(const RequestId& rid) override {
    auto it = unordered_.find(rid);
    return it == unordered_.end() ? nullptr : it->second;
  }
  void ConsumeUnordered(const RequestId& rid) override { unordered_.erase(rid); }
  void StoreRecovered(const RequestId& rid,
                      std::shared_ptr<const RpcRequest> request) override {
    unordered_[rid] = std::move(request);
  }
  SnapshotCapture CaptureSnapshot() override {
    // The test state machine is the applied rid sequence; serialize it.
    BufferWriter w;
    w.PutU64(applied_);
    w.PutU64(applied_rids.size());
    for (const RequestId& rid : applied_rids) {
      w.PutU32(static_cast<uint32_t>(rid.client));
      w.PutU64(rid.seq);
    }
    return SnapshotCapture{MakeBody(w.TakeBytes()), applied_};
  }
  void RestoreSnapshot(const Body& state, LogIndex last_included, Term /*included_term*/,
                       MembershipConfigPtr /*config*/, LogIndex /*config_idx*/) override {
    BufferReader r(*state);
    uint64_t applied = 0;
    uint64_t count = 0;
    HC_CHECK(r.GetU64(applied).ok());
    HC_CHECK(r.GetU64(count).ok());
    applied_rids.clear();
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t client = 0;
      uint64_t seq = 0;
      HC_CHECK(r.GetU32(client).ok());
      HC_CHECK(r.GetU64(seq).ok());
      applied_rids.push_back(RequestId{static_cast<HostId>(client), seq});
    }
    applied_ = std::max<LogIndex>(applied_, last_included);
    ++snapshots_restored;
  }
  void OnCommitAdvanced(LogIndex commit) override;
  void OnLeadershipChanged(bool is_leader) override { leadership_changes.push_back(is_leader); }
  void DrainUnorderedIntoLog() override;

  void AddUnordered(std::shared_ptr<const RpcRequest> request) {
    drain_order_.push_back(request->rid());
    unordered_[request->rid()] = std::move(request);
  }

  std::vector<RequestId> applied_rids;
  uint64_t snapshots_restored = 0;
  std::vector<bool> leadership_changes;

 private:
  MiniHarness* harness_;
  NodeId self_;
  std::unordered_map<RequestId, std::shared_ptr<const RpcRequest>, RequestIdHash> unordered_;
  std::vector<RequestId> drain_order_;
  LogIndex applied_ = 0;

  friend class MiniHarness;
};

class MiniHarness {
 public:
  explicit MiniHarness(int32_t n, RaftOptions base = RaftOptions{}) {
    for (NodeId i = 0; i < n; ++i) {
      RaftOptions opts = base;
      opts.id = i;
      opts.cluster_size = n;
      // Node 0 gets the shortest timeout for a deterministic first leader.
      opts.election_timeout_min = Millis(5) + Millis(5) * i;
      opts.election_timeout_max = opts.election_timeout_min + Millis(2);
      envs_.push_back(std::make_unique<MiniEnv>(this, i));
      nodes_.push_back(std::make_unique<RaftNode>(&sim, 100 + static_cast<uint64_t>(i), opts,
                                                  envs_.back().get()));
    }
  }

  void StartAll() {
    for (auto& node : nodes_) {
      node->Start();
    }
  }

  void Deliver(NodeId from, NodeId to, MessagePtr msg) {
    if (down_[from] || down_[to]) {
      return;
    }
    if (drop_filter && drop_filter(from, to, *msg)) {
      return;
    }
    sim.After(kHop, [this, to, msg = std::move(msg)]() {
      if (down_[to]) {
        return;
      }
      RaftNode& n = *nodes_[static_cast<size_t>(to)];
      if (const auto* ae = dynamic_cast<const AppendEntriesReq*>(msg.get())) {
        n.OnAppendEntries(*ae, false);
      } else if (const auto* rep = dynamic_cast<const AppendEntriesRep*>(msg.get())) {
        n.OnAppendEntriesRep(*rep);
      } else if (const auto* v = dynamic_cast<const RequestVoteReq*>(msg.get())) {
        n.OnRequestVote(*v);
      } else if (const auto* vr = dynamic_cast<const RequestVoteRep*>(msg.get())) {
        n.OnRequestVoteRep(*vr);
      } else if (const auto* rq = dynamic_cast<const RecoveryReq*>(msg.get())) {
        n.OnRecoveryReq(*rq);
      } else if (const auto* rp = dynamic_cast<const RecoveryRep*>(msg.get())) {
        n.OnRecoveryRep(*rp);
      } else if (const auto* sn = dynamic_cast<const InstallSnapshotReq*>(msg.get())) {
        n.OnInstallSnapshot(*sn);
      } else if (const auto* sr = dynamic_cast<const InstallSnapshotRep*>(msg.get())) {
        n.OnInstallSnapshotRep(*sr);
      }
    });
  }

  NodeId Leader() {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (!down_[static_cast<NodeId>(i)] && nodes_[i]->IsLeader()) {
        return static_cast<NodeId>(i);
      }
    }
    return kInvalidNode;
  }

  NodeId WaitForLeader(TimeNs deadline = Seconds(5)) {
    while (Leader() == kInvalidNode && sim.Now() < deadline && sim.Step()) {
    }
    return Leader();
  }

  void Run(TimeNs duration) { sim.RunUntil(sim.Now() + duration); }

  void Kill(NodeId n) { down_[n] = true; }
  void Revive(NodeId n) { down_[n] = false; }

  RaftNode& node(NodeId n) { return *nodes_[static_cast<size_t>(n)]; }
  MiniEnv& env(NodeId n) { return *envs_[static_cast<size_t>(n)]; }

  static std::shared_ptr<const RpcRequest> Req(HostId client, uint64_t seq,
                                               bool read_only = false) {
    return std::make_shared<RpcRequest>(
        RequestId{client, seq},
        read_only ? R2p2Policy::kReplicatedReqRo : R2p2Policy::kReplicatedReq,
        MakeBody(std::vector<uint8_t>(24)));
  }

  Simulator sim;
  std::function<bool(NodeId from, NodeId to, const Message&)> drop_filter;

 private:
  std::vector<std::unique_ptr<MiniEnv>> envs_;
  std::vector<std::unique_ptr<RaftNode>> nodes_;
  std::unordered_map<NodeId, bool> down_;

  friend class MiniEnv;
};

void MiniEnv::SendToPeer(NodeId peer, MessagePtr msg) {
  harness_->Deliver(self_, peer, std::move(msg));
}

void MiniEnv::OnCommitAdvanced(LogIndex commit) {
  // Instant state machine: apply everything as soon as it commits.
  RaftNode& node = *harness_->nodes_[static_cast<size_t>(self_)];
  while (applied_ < commit) {
    ++applied_;
    const LogEntry& e = node.log().At(applied_);
    if (!e.noop) {
      applied_rids.push_back(e.rid);
    }
    node.OnApplied(applied_);
  }
}

void MiniEnv::DrainUnorderedIntoLog() {
  RaftNode& node = *harness_->nodes_[static_cast<size_t>(self_)];
  std::vector<RequestId> order = drain_order_;
  drain_order_.clear();
  for (const RequestId& rid : order) {
    auto it = unordered_.find(rid);
    if (it != unordered_.end()) {
      auto req = it->second;
      if (node.SubmitRequest(req)) {
        unordered_.erase(req->rid());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Elections
// ---------------------------------------------------------------------------

TEST(RaftNodeTest, SingleNodeBecomesLeaderImmediately) {
  MiniHarness h(1);
  h.StartAll();
  EXPECT_EQ(h.Leader(), 0);
  EXPECT_EQ(h.node(0).term(), 1u);
}

TEST(RaftNodeTest, ElectsExactlyOneLeader) {
  MiniHarness h(3);
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  ASSERT_NE(leader, kInvalidNode);
  h.Run(Millis(50));
  int leaders = 0;
  for (NodeId n = 0; n < 3; ++n) {
    if (h.node(n).IsLeader()) {
      ++leaders;
    }
  }
  EXPECT_EQ(leaders, 1);
  // Followers learned the leader.
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(h.node(n).leader_hint(), leader);
    EXPECT_EQ(h.node(n).term(), h.node(leader).term());
  }
}

TEST(RaftNodeTest, HeartbeatsSuppressNewElections) {
  MiniHarness h(3);
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  const Term term = h.node(leader).term();
  h.Run(Millis(500));  // many election timeouts worth of quiet time
  EXPECT_EQ(h.Leader(), leader);
  EXPECT_EQ(h.node(leader).term(), term);
}

TEST(RaftNodeTest, LeaderCrashTriggersFailover) {
  MiniHarness h(3);
  h.StartAll();
  const NodeId first = h.WaitForLeader();
  ASSERT_NE(first, kInvalidNode);
  h.Kill(first);
  h.Run(Millis(200));
  const NodeId second = h.Leader();
  ASSERT_NE(second, kInvalidNode);
  EXPECT_NE(second, first);
  EXPECT_GT(h.node(second).term(), h.node(first).term());
}

TEST(RaftNodeTest, NoQuorumNoLeader) {
  MiniHarness h(3);
  h.StartAll();
  const NodeId first = h.WaitForLeader();
  // Kill two of three: the survivor must never win an election.
  h.Kill(first);
  h.Kill((first + 1) % 3);
  h.Run(Millis(500));
  EXPECT_EQ(h.Leader(), kInvalidNode);
}

TEST(RaftNodeTest, CandidateWithStaleLogIsRejected) {
  MiniHarness h(3);
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  // Commit some entries everywhere except node 2 (isolated).
  h.drop_filter = [](NodeId, NodeId to, const Message&) { return to == 2; };
  for (uint64_t i = 1; i <= 5; ++i) {
    h.node(leader).SubmitRequest(MiniHarness::Req(1, i));
  }
  h.Run(Millis(50));
  EXPECT_GT(h.node(leader).commit_index(), 0u);

  // Heal node 2's inbound but kill the leader; node 2 will time out and
  // campaign with a stale log — the other follower must refuse it, and the
  // up-to-date follower must win eventually.
  h.drop_filter = nullptr;
  h.Kill(leader);
  h.Run(Millis(500));
  const NodeId second = h.Leader();
  ASSERT_NE(second, kInvalidNode);
  // Election safety: the new leader holds all committed entries.
  EXPECT_GE(h.node(second).log().last_index(), 5u);
}

// ---------------------------------------------------------------------------
// Replication
// ---------------------------------------------------------------------------

TEST(RaftNodeTest, CommitsAndAppliesInOrderOnAllNodes) {
  MiniHarness h(3);
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  for (uint64_t i = 1; i <= 10; ++i) {
    EXPECT_TRUE(h.node(leader).SubmitRequest(MiniHarness::Req(1, i)));
  }
  h.Run(Millis(100));
  for (NodeId n = 0; n < 3; ++n) {
    ASSERT_EQ(h.env(n).applied_rids.size(), 10u) << "node " << n;
    for (uint64_t i = 0; i < 10; ++i) {
      EXPECT_EQ(h.env(n).applied_rids[i].seq, i + 1) << "node " << n;
    }
  }
}

TEST(RaftNodeTest, FollowerRejectsSubmit) {
  MiniHarness h(3);
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  const NodeId follower = (leader + 1) % 3;
  EXPECT_FALSE(h.node(follower).SubmitRequest(MiniHarness::Req(1, 1)));
  EXPECT_EQ(h.node(follower).stats().submits_rejected, 1u);
}

TEST(RaftNodeTest, DuplicateSubmitRejected) {
  MiniHarness h(3);
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  EXPECT_TRUE(h.node(leader).SubmitRequest(MiniHarness::Req(1, 7)));
  EXPECT_FALSE(h.node(leader).SubmitRequest(MiniHarness::Req(1, 7)));
}

TEST(RaftNodeTest, LaggingFollowerCatchesUpAfterPartition) {
  MiniHarness h(3);
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  const NodeId slow = (leader + 1) % 3;
  h.drop_filter = [slow](NodeId, NodeId to, const Message&) { return to == slow; };
  for (uint64_t i = 1; i <= 20; ++i) {
    h.node(leader).SubmitRequest(MiniHarness::Req(1, i));
  }
  h.Run(Millis(100));
  EXPECT_EQ(h.env(slow).applied_rids.size(), 0u);
  // Heal; heartbeats retransmit and the follower catches up.
  h.drop_filter = nullptr;
  h.Run(Millis(200));
  EXPECT_EQ(h.env(slow).applied_rids.size(), 20u);
  EXPECT_EQ(h.node(slow).commit_index(), h.node(leader).commit_index());
}

TEST(RaftNodeTest, LostAppendEntriesRetransmittedByHeartbeat) {
  MiniHarness h(3);
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  // Drop the next AE burst entirely, once.
  int drops = 0;
  h.drop_filter = [&drops](NodeId, NodeId, const Message& m) {
    if (dynamic_cast<const AppendEntriesReq*>(&m) != nullptr && drops < 2) {
      ++drops;
      return true;
    }
    return false;
  };
  h.node(leader).SubmitRequest(MiniHarness::Req(1, 1));
  h.Run(Millis(100));
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(h.env(n).applied_rids.size(), 1u) << "node " << n;
  }
}

TEST(RaftNodeTest, DeposedLeaderTruncatesConflictingSuffix) {
  MiniHarness h(3);
  h.StartAll();
  const NodeId first = h.WaitForLeader();
  // Partition the leader away from both followers, then feed it requests it
  // can never commit.
  h.drop_filter = [first](NodeId from, NodeId to, const Message&) {
    return from == first || to == first;
  };
  for (uint64_t i = 1; i <= 5; ++i) {
    h.node(first).SubmitRequest(MiniHarness::Req(9, i));
  }
  h.Run(Millis(300));  // followers elect a new leader meanwhile
  // The partitioned old leader still believes it leads; find the leader the
  // connected majority elected.
  NodeId second = kInvalidNode;
  for (NodeId n = 0; n < 3; ++n) {
    if (n != first && h.node(n).IsLeader()) {
      second = n;
    }
  }
  ASSERT_NE(second, kInvalidNode);
  ASSERT_NE(second, first);
  // New leader commits different entries.
  for (uint64_t i = 1; i <= 3; ++i) {
    h.node(second).SubmitRequest(MiniHarness::Req(8, i));
  }
  h.Run(Millis(100));
  // Heal the partition; the old leader must adopt the new history.
  h.drop_filter = nullptr;
  h.Run(Millis(300));
  EXPECT_FALSE(h.node(first).IsLeader());
  EXPECT_EQ(h.node(first).commit_index(), h.node(second).commit_index());
  ASSERT_GE(h.env(first).applied_rids.size(), 3u);
  for (size_t i = 0; i < h.env(second).applied_rids.size(); ++i) {
    EXPECT_EQ(h.env(first).applied_rids[i], h.env(second).applied_rids[i]);
  }
}

// ---------------------------------------------------------------------------
// HovercRaft metadata mode + recovery
// ---------------------------------------------------------------------------

RaftOptions MetadataOptions() {
  RaftOptions opts;
  opts.metadata_only = true;
  return opts;
}

TEST(RaftNodeTest, MetadataModeResolvesFromUnorderedSet) {
  MiniHarness h(3, MetadataOptions());
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  // Simulate the client multicast: all nodes got the payload.
  for (uint64_t i = 1; i <= 5; ++i) {
    auto req = MiniHarness::Req(1, i);
    for (NodeId n = 0; n < 3; ++n) {
      if (n != leader) {
        h.env(n).AddUnordered(req);
      }
    }
    h.node(leader).SubmitRequest(req);
  }
  h.Run(Millis(100));
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(h.env(n).applied_rids.size(), 5u) << "node " << n;
  }
}

TEST(RaftNodeTest, MissingPayloadRecoveredFromLeader) {
  MiniHarness h(3, MetadataOptions());
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  const NodeId starved = (leader + 1) % 3;
  const NodeId healthy = (leader + 2) % 3;
  // The starved follower missed the client multicast for request 1.
  auto req = MiniHarness::Req(1, 1);
  h.env(healthy).AddUnordered(req);
  h.node(leader).SubmitRequest(req);
  h.Run(Millis(100));
  // It must have fetched the payload point-to-point and applied it.
  EXPECT_EQ(h.env(starved).applied_rids.size(), 1u);
  EXPECT_GE(h.node(starved).stats().recoveries_requested, 1u);
  EXPECT_GE(h.node(leader).stats().recoveries_served, 1u);
  EXPECT_EQ(h.node(starved).commit_index(), h.node(leader).commit_index());
}

TEST(RaftNodeTest, NewLeaderDrainsUnorderedRequests) {
  MiniHarness h(3, MetadataOptions());
  h.StartAll();
  const NodeId first = h.WaitForLeader();
  // A request reached the followers but the leader died before ordering it.
  auto req = MiniHarness::Req(1, 42);
  for (NodeId n = 0; n < 3; ++n) {
    if (n != first) {
      h.env(n).AddUnordered(req);
    }
  }
  h.Kill(first);
  h.Run(Millis(400));
  const NodeId second = h.Leader();
  ASSERT_NE(second, kInvalidNode);
  // The new leader ordered the orphaned request; both survivors applied it.
  EXPECT_EQ(h.env(second).applied_rids.size(), 1u);
  EXPECT_EQ(h.env(second).applied_rids[0].seq, 42u);
}

TEST(RaftNodeTest, RecoveryForUnknownRequestReturnsNotFound) {
  MiniHarness h(3, MetadataOptions());
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  const NodeId asker = (leader + 1) % 3;
  // A rid the leader has never seen: neither in its log nor its unordered set.
  const RequestId unknown{7, 999};
  h.node(leader).OnRecoveryReq(RecoveryReq(asker, unknown));
  h.Run(Millis(50));
  // The leader answered found() == false and counted no served recovery...
  EXPECT_EQ(h.node(leader).stats().recoveries_served, 0u);
  // ...and the asker stored nothing: a not-found reply leaves no state behind.
  EXPECT_EQ(h.env(asker).LookupUnordered(unknown), nullptr);
  // The exchange was harmless: normal replication still works afterwards.
  auto req = MiniHarness::Req(1, 1);
  for (NodeId n = 0; n < 3; ++n) {
    if (n != leader) {
      h.env(n).AddUnordered(req);
    }
  }
  h.node(leader).SubmitRequest(req);
  h.Run(Millis(100));
  EXPECT_EQ(h.env(asker).applied_rids.size(), 1u);
}

TEST(RaftNodeTest, DuplicateRecoveryRepliesAreIdempotent) {
  MiniHarness h(3, MetadataOptions());
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  const NodeId starved = (leader + 1) % 3;
  const NodeId healthy = (leader + 2) % 3;
  // Same setup as MissingPayloadRecoveredFromLeader: the starved follower
  // misses the multicast and recovers the payload point-to-point.
  auto req = MiniHarness::Req(1, 1);
  h.env(healthy).AddUnordered(req);
  h.node(leader).SubmitRequest(req);
  h.Run(Millis(100));
  ASSERT_EQ(h.env(starved).applied_rids.size(), 1u);
  const LogIndex commit_before = h.node(starved).commit_index();
  // Heartbeat-driven retries can deliver the same recovery reply again after
  // the first already unblocked the follower. Late duplicates must be inert.
  h.node(starved).OnRecoveryRep(RecoveryRep(req->rid(), req));
  h.node(starved).OnRecoveryRep(RecoveryRep(req->rid(), req));
  h.Run(Millis(100));
  EXPECT_EQ(h.env(starved).applied_rids.size(), 1u);
  EXPECT_GE(h.node(starved).commit_index(), commit_before);
  EXPECT_EQ(h.node(starved).commit_index(), h.node(leader).commit_index());
}

TEST(RaftNodeTest, CompactionPreservesReplication) {
  RaftOptions opts;
  opts.log_retention_entries = 8;
  MiniHarness h(3, opts);
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  for (uint64_t i = 1; i <= 30; ++i) {
    h.node(leader).SubmitRequest(MiniHarness::Req(1, i));
  }
  h.Run(Millis(100));
  // Compact everywhere at the safe bound.
  for (NodeId n = 0; n < 3; ++n) {
    h.node(n).CompactLog(h.node(n).MinAppliedKnown());
  }
  EXPECT_GT(h.node(leader).log().first_index(), 1u);
  // The cluster keeps working after compaction.
  for (uint64_t i = 31; i <= 40; ++i) {
    h.node(leader).SubmitRequest(MiniHarness::Req(1, i));
  }
  h.Run(Millis(100));
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(h.env(n).applied_rids.size(), 40u) << "node " << n;
  }
}

}  // namespace
}  // namespace hovercraft

namespace hovercraft {
namespace {

// ---------------------------------------------------------------------------
// Regression tests for pipelining + heartbeat interaction
// ---------------------------------------------------------------------------

// An actively flowing stream must not be rewound by heartbeats: the number
// of append_entries sent should be close to entries/batch, not dominated by
// per-heartbeat retransmissions of the in-flight window.
TEST(RaftNodeTest, HeartbeatDoesNotRetransmitActiveStream) {
  MiniHarness h(3);
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  const uint64_t ae_before = h.node(leader).stats().ae_sent;
  // Submit steadily for 100ms (100 heartbeat intervals).
  for (int burst = 0; burst < 100; ++burst) {
    h.sim.After(Millis(burst), [&h, leader, burst]() {
      for (uint64_t i = 0; i < 10; ++i) {
        h.node(leader).SubmitRequest(
            MiniHarness::Req(1, static_cast<uint64_t>(burst) * 10 + i + 1));
      }
    });
  }
  h.Run(Millis(150));
  const uint64_t ae_sent = h.node(leader).stats().ae_sent - ae_before;
  // 1000 entries, 2 followers. Per-burst sends (eager, small batches) are
  // expected; a heartbeat retransmission storm would multiply this by the
  // in-flight window every millisecond.
  EXPECT_LT(ae_sent, 1200u);
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(h.env(n).applied_rids.size(), 1000u) << "node " << n;
  }
}

// A halted ("crashed") node must not start elections, and must rejoin as a
// follower without disrupting the stable leader on resume.
TEST(RaftNodeTest, HaltedNodeDoesNotInflateTerms) {
  MiniHarness h(3);
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  const Term stable_term = h.node(leader).term();
  const NodeId victim = (leader + 1) % 3;
  h.Kill(victim);
  h.node(victim).Halt();
  h.Run(Millis(500));  // dozens of election timeouts
  EXPECT_EQ(h.node(victim).term(), stable_term);
  EXPECT_NE(h.node(victim).role(), RaftRole::kCandidate);
  // Revive: it rejoins as a follower and catches up without an election.
  h.Revive(victim);
  h.node(victim).Resume();
  h.node(leader).SubmitRequest(MiniHarness::Req(2, 1));
  h.Run(Millis(100));
  EXPECT_EQ(h.Leader(), leader);
  EXPECT_EQ(h.node(leader).term(), stable_term);
  EXPECT_EQ(h.env(victim).applied_rids.size(), 1u);
}

// ---------------------------------------------------------------------------
// Adversarial hardening: PreVote, CheckQuorum, ReadIndex (docs/hardening.md)
// ---------------------------------------------------------------------------

RaftOptions WithDefenses(bool pre_vote, bool check_quorum) {
  RaftOptions opts;
  opts.pre_vote = pre_vote;
  opts.check_quorum = check_quorum;
  return opts;
}

// The heart of PreVote: a pre-candidate polls without mutating anything. An
// isolated follower runs pre-election after pre-election, never increments
// its term, never becomes a real candidate — and rejoins harmlessly.
TEST(RaftNodeTest, PreCandidateNeverIncrementsTerm) {
  MiniHarness h(3);
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  const Term stable_term = h.node(leader).term();
  const NodeId victim = (leader + 1) % 3;
  h.drop_filter = [victim](NodeId from, NodeId to, const Message&) {
    return from == victim || to == victim;
  };
  h.Run(Millis(500));  // dozens of election timeouts in the dark
  EXPECT_EQ(h.node(victim).term(), stable_term);
  EXPECT_EQ(h.node(victim).stats().elections_started, 0u);
  EXPECT_GT(h.node(victim).stats().prevote_rounds, 5u);
  EXPECT_NE(h.node(victim).role(), RaftRole::kCandidate);
  // Rejoin: nothing happened. Same leader, same term, no election.
  h.drop_filter = nullptr;
  h.Run(Millis(100));
  EXPECT_EQ(h.Leader(), leader);
  EXPECT_EQ(h.node(leader).term(), stable_term);
  EXPECT_EQ(h.node(victim).term(), stable_term);
}

// Control: the identical isolation without PreVote inflates the victim's
// term, and the rejoin deposes a perfectly healthy leader — the disruption
// PreVote exists to prevent.
TEST(RaftNodeTest, RejoinDisruptsLeaderWithoutPreVote) {
  MiniHarness h(3, WithDefenses(/*pre_vote=*/false, /*check_quorum=*/true));
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  const Term stable_term = h.node(leader).term();
  const NodeId victim = (leader + 1) % 3;
  h.drop_filter = [victim](NodeId from, NodeId to, const Message&) {
    return from == victim || to == victim;
  };
  h.Run(Millis(500));
  EXPECT_GT(h.node(victim).term(), stable_term + 3);  // term storm in the dark
  h.drop_filter = nullptr;
  h.Run(Millis(300));
  // The inflated term tore down the leader (via its own AppendEntries being
  // rejected at the higher term); the cluster had to re-elect.
  uint64_t total_wins = 0;
  for (NodeId n = 0; n < 3; ++n) {
    total_wins += h.node(n).stats().times_leader;
  }
  EXPECT_GE(total_wins, 2u);
  ASSERT_NE(h.Leader(), kInvalidNode);
  EXPECT_GT(h.node(h.Leader()).term(), stable_term);
}

// A pre-candidate with a stale log loses the poll and never campaigns for
// real: the up-to-date follower takes over after the leader dies.
TEST(RaftNodeTest, PreElectionLostOnStaleLog) {
  MiniHarness h(3);
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  // Commit entries everywhere except node 2.
  h.drop_filter = [](NodeId, NodeId to, const Message&) { return to == 2; };
  for (uint64_t i = 1; i <= 5; ++i) {
    h.node(leader).SubmitRequest(MiniHarness::Req(1, i));
  }
  h.Run(Millis(50));
  ASSERT_GT(h.node(leader).commit_index(), 0u);
  h.drop_filter = nullptr;
  h.Kill(leader);
  h.Run(Millis(500));
  const NodeId second = h.Leader();
  ASSERT_NE(second, kInvalidNode);
  EXPECT_NE(second, 2);
  EXPECT_GE(h.node(second).log().last_index(), 5u);
  // The stale node polled at least once, was refused on log freshness, and
  // never started a term-bumping election of its own.
  EXPECT_GE(h.node(2).stats().prevote_rounds, 1u);
  EXPECT_EQ(h.node(2).stats().elections_started, 0u);
}

// RNG-draw parity: PreVote must not perturb the election-timer draw order
// (one draw per arm, poll outcomes routed synchronously), so the same seeds
// produce the same first leader at the same term with the defense on or off.
TEST(RaftNodeTest, PreVotePreservesElectionTimeline) {
  MiniHarness with(3, WithDefenses(true, true));
  MiniHarness without(3, WithDefenses(false, true));
  with.StartAll();
  without.StartAll();
  const NodeId leader_with = with.WaitForLeader();
  const NodeId leader_without = without.WaitForLeader();
  EXPECT_EQ(leader_with, leader_without);
  EXPECT_EQ(with.node(leader_with).term(), without.node(leader_without).term());
  with.Run(Millis(300));
  without.Run(Millis(300));
  EXPECT_EQ(with.Leader(), without.Leader());
  EXPECT_EQ(with.node(leader_with).term(), without.node(leader_without).term());
  EXPECT_EQ(with.node(leader_with).stats().elections_started,
            without.node(leader_without).stats().elections_started);
  // The pre-vote run actually used the pre-election path.
  EXPECT_GE(with.node(leader_with).stats().prevote_rounds, 1u);
  EXPECT_EQ(without.node(leader_without).stats().prevote_rounds, 0u);
}

// CheckQuorum: a leader that cannot reach a quorum steps down on its own
// within the evaluation window instead of shouting into the void forever.
TEST(RaftNodeTest, CheckQuorumLeaderStepsDownWhenCutOff) {
  MiniHarness h(3);
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  h.drop_filter = [leader](NodeId from, NodeId to, const Message&) {
    return from == leader || to == leader;
  };
  h.Run(Millis(100));
  EXPECT_NE(h.node(leader).role(), RaftRole::kLeader);
  EXPECT_EQ(h.node(leader).stats().stepdowns_check_quorum, 1u);
  // The connected majority elected a replacement meanwhile.
  const NodeId second = h.Leader();
  ASSERT_NE(second, kInvalidNode);
  EXPECT_NE(second, leader);
}

// Leader stickiness: a forged RequestVote at an absurd term — injected
// straight into every node, bypassing the network — is ignored by followers
// hearing a live leader and by the leader holding quorum contact.
TEST(RaftNodeTest, ForgedVoteIgnoredUnderStickiness) {
  MiniHarness h(3);
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  h.Run(Millis(20));  // let heartbeat replies build quorum evidence
  const Term stable_term = h.node(leader).term();
  const NodeId forged_id = (leader + 1) % 3;
  const RequestVoteReq forged(stable_term + 100, forged_id, 0, 0);
  for (NodeId n = 0; n < 3; ++n) {
    h.node(n).OnRequestVote(forged);
    EXPECT_GE(h.node(n).stats().votes_ignored_sticky, 1u) << "node " << n;
  }
  h.Run(Millis(100));
  EXPECT_EQ(h.Leader(), leader);
  EXPECT_EQ(h.node(leader).term(), stable_term);
}

// Control: without CheckQuorum the same forged packet adopts the inflated
// term everywhere and deposes the leader, even though the "candidate" holds
// no log and could never win.
TEST(RaftNodeTest, ForgedVoteDeposesLeaderWithoutStickiness) {
  MiniHarness h(3, WithDefenses(/*pre_vote=*/true, /*check_quorum=*/false));
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  const Term stable_term = h.node(leader).term();
  const NodeId forged_id = (leader + 1) % 3;
  const RequestVoteReq forged(stable_term + 100, forged_id, 0, 0);
  for (NodeId n = 0; n < 3; ++n) {
    h.node(n).OnRequestVote(forged);
  }
  EXPECT_NE(h.node(leader).role(), RaftRole::kLeader);
  EXPECT_GE(h.node(leader).term(), stable_term + 100);
  // Liveness recovers — at an inflated term, which is the disruption.
  h.Run(Millis(300));
  ASSERT_NE(h.Leader(), kInvalidNode);
  EXPECT_GT(h.node(h.Leader()).term(), stable_term + 100);
}

// Election-timer skew: a follower whose timer fires below the heartbeat
// interval keeps losing pre-elections against a live leader; no term moves.
TEST(RaftNodeTest, SkewedTimerCannotDisruptWithPreVote) {
  MiniHarness h(3);
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  const Term stable_term = h.node(leader).term();
  const NodeId victim = (leader + 1) % 3;
  h.node(victim).SkewElectionTimer(0.1);  // ~0.5-0.7ms vs 1ms heartbeats
  h.Run(Millis(300));
  EXPECT_EQ(h.Leader(), leader);
  EXPECT_EQ(h.node(leader).term(), stable_term);
  EXPECT_EQ(h.node(victim).stats().elections_started, 0u);
  EXPECT_GE(h.node(victim).stats().prevote_rounds, 1u);
  h.node(victim).SkewElectionTimer(1.0);
  h.Run(Millis(100));
  EXPECT_EQ(h.Leader(), leader);
}

// ReadIndex: the leader serves a linearizable read at its commit index
// without appending anything; followers refuse.
TEST(RaftNodeTest, ReadIndexGrantsAtCommitWithoutLogGrowth) {
  RaftOptions opts;
  opts.read_index = true;
  MiniHarness h(3, opts);
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  for (uint64_t i = 1; i <= 3; ++i) {
    h.node(leader).SubmitRequest(MiniHarness::Req(1, i));
  }
  h.Run(Millis(50));
  const LogIndex log_before = h.node(leader).log().last_index();
  const RaftNode::ReadGrant grant = h.node(leader).AcquireReadIndex();
  ASSERT_TRUE(grant.granted);
  EXPECT_EQ(grant.read_index, h.node(leader).commit_index());
  EXPECT_EQ(h.node(leader).log().last_index(), log_before);  // no entry appended
  EXPECT_EQ(h.node(leader).stats().read_index_served, 1u);
  const NodeId follower = (leader + 1) % 3;
  EXPECT_FALSE(h.node(follower).AcquireReadIndex().granted);
}

// The lease is strict: a leader cut off from its quorum stops granting reads
// once election_timeout_min passes — exactly when a new leader could exist.
// With a skewed (widened) lease it would keep serving; that unsafe
// configuration is the stale-read control the chaos battery runs.
TEST(RaftNodeTest, ReadLeaseExpiresWithoutQuorumContact) {
  RaftOptions opts;
  opts.read_index = true;
  opts.check_quorum = false;  // isolate lease behaviour from stepdown
  MiniHarness strict(3, opts);
  strict.StartAll();
  const NodeId leader = strict.WaitForLeader();
  strict.node(leader).SubmitRequest(MiniHarness::Req(1, 1));
  strict.Run(Millis(5));
  ASSERT_TRUE(strict.node(leader).AcquireReadIndex().granted);
  strict.drop_filter = [leader](NodeId from, NodeId to, const Message&) {
    return from == leader || to == leader;
  };
  strict.Run(Millis(30));  // well past election_timeout_min
  EXPECT_TRUE(strict.node(leader).IsLeader());  // no CheckQuorum: still "leads"
  EXPECT_FALSE(strict.node(leader).AcquireReadIndex().granted);
  EXPECT_GE(strict.node(leader).stats().read_index_rejected, 1u);

  opts.read_lease_timeout = Seconds(10);  // skewed lease: evidence never ages
  MiniHarness skewed(3, opts);
  skewed.StartAll();
  const NodeId leader2 = skewed.WaitForLeader();
  skewed.node(leader2).SubmitRequest(MiniHarness::Req(1, 1));
  skewed.Run(Millis(5));
  skewed.drop_filter = [leader2](NodeId from, NodeId to, const Message&) {
    return from == leader2 || to == leader2;
  };
  skewed.Run(Millis(30));
  EXPECT_TRUE(skewed.node(leader2).AcquireReadIndex().granted);  // the hazard
}

// A follower whose hint lies below the leader's compaction point must be
// repaired by snapshot (triggered from the failure-reply path, not only
// from heartbeats).
TEST(RaftNodeTest, FailureReplyBelowCompactionTriggersSnapshot) {
  RaftOptions opts;
  opts.log_retention_entries = 8;
  MiniHarness h(3, opts);
  h.StartAll();
  const NodeId leader = h.WaitForLeader();
  const NodeId straggler = (leader + 1) % 3;
  h.Kill(straggler);
  h.node(straggler).Halt();
  for (uint64_t i = 1; i <= 100; ++i) {
    h.node(leader).SubmitRequest(MiniHarness::Req(1, i));
  }
  h.Run(Millis(100));
  // Compact far beyond the straggler's position.
  h.node(leader).CompactLog(h.node(leader).applied_index());
  ASSERT_GT(h.node(leader).log().first_index(), 1u);

  h.Revive(straggler);
  h.node(straggler).Resume();
  h.Run(Millis(300));
  EXPECT_GE(h.node(leader).stats().snapshots_sent, 1u);
  EXPECT_GE(h.env(straggler).snapshots_restored, 1u);
  EXPECT_EQ(h.node(straggler).commit_index(), h.node(leader).commit_index());
  // The tail beyond the snapshot replicated normally.
  EXPECT_EQ(h.env(straggler).applied_rids.size(), h.env(leader).applied_rids.size());
}

}  // namespace
}  // namespace hovercraft
