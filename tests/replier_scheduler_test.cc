#include <gtest/gtest.h>

#include <map>

#include "src/raft/replier_scheduler.h"

namespace hovercraft {
namespace {

TEST(ReplierSchedulerTest, LeaderOnlyAlwaysPicksSelf) {
  ReplierScheduler sched(3, /*self=*/0, ReplierPolicy::kLeaderOnly, /*bound=*/4, 1);
  for (LogIndex i = 1; i <= 4; ++i) {
    EXPECT_EQ(sched.Assign(i), 0);
  }
  // Bound reached: even the leader becomes ineligible until it applies.
  EXPECT_EQ(sched.Assign(5), kInvalidNode);
  sched.UpdateApplied(0, 2);
  EXPECT_EQ(sched.PendingOf(0), 2);
  EXPECT_EQ(sched.Assign(5), 0);
}

TEST(ReplierSchedulerTest, JbsqPicksShortestQueue) {
  ReplierScheduler sched(3, 0, ReplierPolicy::kJbsq, /*bound=*/8, 2);
  // Give node 1 a backlog of 3, node 2 a backlog of 1, node 0 a backlog of 2.
  std::map<NodeId, int> assigned;
  LogIndex idx = 1;
  // All equal initially; assignments spread.
  for (int i = 0; i < 6; ++i) {
    const NodeId n = sched.Assign(idx++);
    ASSERT_NE(n, kInvalidNode);
    assigned[n]++;
  }
  // Equal backlog of 2 everywhere.
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(sched.PendingOf(n), 2);
  }
  // Node 1 applies everything: it must win the next assignments.
  sched.UpdateApplied(1, idx);
  EXPECT_EQ(sched.Assign(idx), 1);
}

TEST(ReplierSchedulerTest, JbsqRespectsBound) {
  ReplierScheduler sched(2, 0, ReplierPolicy::kJbsq, /*bound=*/2, 3);
  EXPECT_NE(sched.Assign(1), kInvalidNode);
  EXPECT_NE(sched.Assign(2), kInvalidNode);
  EXPECT_NE(sched.Assign(3), kInvalidNode);
  EXPECT_NE(sched.Assign(4), kInvalidNode);
  // Both nodes at the bound.
  EXPECT_EQ(sched.Assign(5), kInvalidNode);
  sched.UpdateApplied(0, 5);
  const NodeId n = sched.Assign(5);
  EXPECT_EQ(n, 0);  // only node 0 is eligible again
}

TEST(ReplierSchedulerTest, RandomSpreadsAcrossEligible) {
  ReplierScheduler sched(4, 0, ReplierPolicy::kRandom, /*bound=*/1'000'000, 4);
  std::map<NodeId, int> counts;
  for (LogIndex i = 1; i <= 4000; ++i) {
    const NodeId n = sched.Assign(i);
    ASSERT_NE(n, kInvalidNode);
    counts[n]++;
    // Immediately apply so the bound never binds.
    sched.UpdateApplied(n, i);
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [node, count] : counts) {
    EXPECT_GT(count, 800) << "node " << node;
    EXPECT_LT(count, 1200) << "node " << node;
  }
}

TEST(ReplierSchedulerTest, RandomSkipsSaturatedNodes) {
  ReplierScheduler sched(3, 0, ReplierPolicy::kRandom, /*bound=*/2, 5);
  // Saturate node 0 and node 1 by applying nothing; keep node 2 drained.
  int node2 = 0;
  for (LogIndex i = 1; i <= 6; ++i) {
    const NodeId n = sched.Assign(i);
    ASSERT_NE(n, kInvalidNode);
    if (n == 2) {
      ++node2;
      sched.UpdateApplied(2, i);
    }
  }
  // Nodes 0/1 hold at most bound each; node 2 absorbed the rest.
  EXPECT_LE(sched.PendingOf(0), 2);
  EXPECT_LE(sched.PendingOf(1), 2);
  EXPECT_GE(node2, 2);
}

TEST(ReplierSchedulerTest, StalledNodeStopsReceivingWork) {
  // The failure-masking property of bounded queues (paper section 3.4): a
  // node whose applied index stops advancing gets at most `bound` more
  // assignments.
  ReplierScheduler sched(3, 0, ReplierPolicy::kJbsq, /*bound=*/4, 6);
  int stalled_assignments = 0;
  LogIndex idx = 1;
  for (int i = 0; i < 1000; ++i) {
    const NodeId n = sched.Assign(idx);
    if (n == kInvalidNode) {
      break;
    }
    if (n == 2) {
      ++stalled_assignments;  // node 2 never applies
    } else {
      sched.UpdateApplied(n, idx);
    }
    ++idx;
  }
  EXPECT_LE(stalled_assignments, 4);
  EXPECT_GT(idx, 500u);  // the healthy nodes kept absorbing work
}

TEST(ReplierSchedulerTest, UpdateAppliedIsMonotone) {
  ReplierScheduler sched(2, 0, ReplierPolicy::kJbsq, 8, 7);
  sched.Assign(1);
  sched.Assign(2);
  sched.UpdateApplied(0, 2);
  sched.UpdateApplied(1, 2);
  sched.UpdateApplied(0, 1);  // stale update must not resurrect backlog
  sched.UpdateApplied(1, 1);
  EXPECT_EQ(sched.PendingOf(0) + sched.PendingOf(1), 0);
}

TEST(ReplierSchedulerTest, JbsqAllQueuesEquallyFullReturnsInvalid) {
  // Saturate every queue to exactly the bound; JBSQ has no eligible node and
  // must keep saying so — repeatedly and without losing state — until some
  // node applies progress. The "tie at the bound" is the worst case of the
  // paper's bounded-queue rule (section 3.4): ties below the bound spread
  // load, ties at the bound must stall.
  ReplierScheduler sched(3, 0, ReplierPolicy::kJbsq, /*bound=*/2, 5);
  LogIndex idx = 1;
  for (int i = 0; i < 6; ++i) {
    ASSERT_NE(sched.Assign(idx++), kInvalidNode);
  }
  for (NodeId n = 0; n < 3; ++n) {
    ASSERT_EQ(sched.PendingOf(n), 2);  // perfectly equal, all at the bound
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sched.Assign(idx), kInvalidNode);  // idempotent: no side effects
  }
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(sched.PendingOf(n), 2);  // failed assigns did not grow queues
  }
  // One node drains: it becomes the unique winner of the next assignments.
  sched.UpdateApplied(2, idx);
  EXPECT_EQ(sched.Assign(idx), 2);
  EXPECT_EQ(sched.Assign(idx + 1), 2);
  // Node 2 is back at the bound; everyone is equal again -> stall again.
  EXPECT_EQ(sched.Assign(idx + 2), kInvalidNode);
}

TEST(ReplierSchedulerTest, JbsqEqualQueuesSpreadDeterministically) {
  // Below the bound, an all-equal tie must both spread across all nodes and
  // replay identically for the same seed.
  ReplierScheduler a(4, 0, ReplierPolicy::kJbsq, /*bound=*/100, 17);
  ReplierScheduler b(4, 0, ReplierPolicy::kJbsq, /*bound=*/100, 17);
  std::map<NodeId, int> counts;
  for (LogIndex i = 1; i <= 40; ++i) {
    const NodeId na = a.Assign(i);
    ASSERT_EQ(na, b.Assign(i));  // same seed, same tie-breaks
    counts[na]++;
  }
  // 40 assignments over 4 always-equal queues: exactly 10 each, because every
  // assignment makes the chosen queue longest until the others catch up.
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [node, count] : counts) {
    EXPECT_EQ(count, 10) << "node " << node;
  }
}

TEST(ReplierSchedulerTest, SetMembersShrinksEligibleSet) {
  // Dynamic membership: a removed node must stop receiving replier
  // assignments immediately, and its queued work is written off (the node is
  // gone — waiting for its applied index to advance would wedge the bound).
  ReplierScheduler sched(4, 0, ReplierPolicy::kJbsq, /*bound=*/8, 9);
  LogIndex idx = 1;
  for (int i = 0; i < 8; ++i) {
    sched.Assign(idx++);
  }
  EXPECT_GT(sched.PendingOf(3), 0);

  sched.SetMembers({0, 1, 2});
  EXPECT_EQ(sched.PendingOf(3), 0);
  for (int i = 0; i < 200; ++i) {
    const NodeId n = sched.Assign(idx);
    ASSERT_NE(n, 3);
    if (n != kInvalidNode) {
      sched.UpdateApplied(n, idx);
    }
    ++idx;
  }

  // A re-added node becomes eligible again.
  sched.SetMembers({0, 1, 2, 3});
  bool saw_three = false;
  for (int i = 0; i < 50 && !saw_three; ++i) {
    const NodeId n = sched.Assign(idx);
    saw_three = (n == 3);
    if (n != kInvalidNode) {
      sched.UpdateApplied(n, idx);
    }
    ++idx;
  }
  EXPECT_TRUE(saw_three);
}

TEST(ReplierSchedulerTest, SetMembersRandomPolicyExcludesNonMembers) {
  ReplierScheduler sched(3, 0, ReplierPolicy::kRandom, /*bound=*/1'000'000, 10);
  sched.SetMembers({0, 2});
  for (LogIndex i = 1; i <= 500; ++i) {
    const NodeId n = sched.Assign(i);
    ASSERT_NE(n, 1);
    ASSERT_NE(n, kInvalidNode);
    sched.UpdateApplied(n, i);
  }
}

TEST(ReplierSchedulerTest, ResetClearsAssignments) {
  ReplierScheduler sched(2, 0, ReplierPolicy::kJbsq, 2, 8);
  sched.Assign(1);
  sched.Assign(2);
  sched.Assign(3);
  sched.Assign(4);
  EXPECT_EQ(sched.Assign(5), kInvalidNode);
  sched.Reset();
  EXPECT_EQ(sched.PendingOf(0), 0);
  EXPECT_EQ(sched.PendingOf(1), 0);
  EXPECT_NE(sched.Assign(5), kInvalidNode);
}

}  // namespace
}  // namespace hovercraft
