// Tests for the R2P2 JBSQ request router over plain (unreplicated) servers.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/app/synthetic.h"
#include "src/core/server.h"
#include "src/loadgen/client.h"
#include "src/loadgen/workload.h"
#include "src/net/network.h"
#include "src/r2p2/router.h"

namespace hovercraft {
namespace {

// A fleet of unreplicated servers behind one router.
struct RouterRig {
  RouterRig(int32_t servers, RouterPolicy policy, int64_t bound, uint64_t seed = 1)
      : net(&sim, costs, seed) {
    ServerConfig sc;
    sc.mode = ClusterMode::kUnreplicated;
    std::vector<HostId> hosts;
    for (int32_t i = 0; i < servers; ++i) {
      fleet.push_back(std::make_unique<ReplicatedServer>(
          &sim, costs, sc, std::make_unique<SyntheticService>(), seed + 100 + i));
      hosts.push_back(net.Attach(fleet.back().get()));
    }
    router = std::make_unique<R2p2Router>(&sim, costs, hosts, policy, bound, seed ^ 0xF00);
    const HostId router_host = net.Attach(router.get());
    for (auto& server : fleet) {
      server->Wire({}, kInvalidHost, router_host);  // FEEDBACK goes to the router
      server->Start();
    }
  }

  std::unique_ptr<ClientHost> MakeClient(double rate, TimeNs service, uint64_t seed) {
    SyntheticWorkloadConfig wc;
    wc.service_time = std::make_shared<FixedDistribution>(service);
    auto client = std::make_unique<ClientHost>(
        &sim, costs, [this]() { return router->id(); },
        std::make_unique<SyntheticWorkload>(wc), rate, seed);
    net.Attach(client.get());
    return client;
  }

  Simulator sim;
  CostModel costs;
  Network net;
  std::vector<std::unique_ptr<ReplicatedServer>> fleet;
  std::unique_ptr<R2p2Router> router;
};

TEST(RouterTest, SpreadsLoadEvenly) {
  RouterRig rig(4, RouterPolicy::kJbsq, 8);
  auto client = rig.MakeClient(100'000, Micros(10), 3);
  client->StartLoad(0, Millis(100));
  rig.sim.RunUntil(Millis(250));

  uint64_t total = 0;
  for (const auto& server : rig.fleet) {
    total += server->server_stats().ops_executed;
  }
  EXPECT_GT(total, 5000u);
  for (size_t s = 0; s < rig.fleet.size(); ++s) {
    const double share =
        static_cast<double>(rig.fleet[s]->server_stats().ops_executed) / total;
    EXPECT_GT(share, 0.15) << "server " << s;
    EXPECT_LT(share, 0.35) << "server " << s;
  }
  EXPECT_EQ(client->total_completed(), client->total_sent());
}

TEST(RouterTest, FeedbackDrainsOutstandingCounters) {
  RouterRig rig(2, RouterPolicy::kJbsq, 4);
  auto client = rig.MakeClient(50'000, Micros(5), 5);
  client->StartLoad(0, Millis(50));
  rig.sim.RunUntil(Millis(200));
  EXPECT_EQ(rig.router->OutstandingOf(0), 0);
  EXPECT_EQ(rig.router->OutstandingOf(1), 0);
  EXPECT_EQ(rig.router->central_queue_depth(), 0u);
}

TEST(RouterTest, CentralQueueAbsorbsBursts) {
  // Tight bound + offered load beyond the fleet's instantaneous slots: the
  // router must hold requests centrally instead of over-committing servers.
  RouterRig rig(2, RouterPolicy::kJbsq, 2);
  auto client = rig.MakeClient(150'000, Micros(30), 7);
  client->StartLoad(0, Millis(40));
  rig.sim.RunUntil(Millis(400));
  EXPECT_GT(rig.router->router_stats().held_central, 100u);
  EXPECT_GT(rig.router->router_stats().central_queue_peak, 4u);
  // Everything eventually served, nothing stuck.
  EXPECT_EQ(client->total_completed(), client->total_sent());
  EXPECT_EQ(rig.router->central_queue_depth(), 0u);
}

TEST(RouterTest, JbsqBeatsRandomTailUnderVariability) {
  // The R2P2 result the paper builds on: with high service-time dispersion,
  // JBSQ's late binding yields a much better tail than random spraying.
  auto run = [](RouterPolicy policy) {
    RouterRig rig(4, policy, 2, 11);
    SyntheticWorkloadConfig wc;
    wc.service_time = std::make_shared<BimodalDistribution>(Micros(20), 0.1, 10.0);
    auto client = std::make_unique<ClientHost>(
        &rig.sim, rig.costs, [&rig]() { return rig.router->id(); },
        std::make_unique<SyntheticWorkload>(wc), 150'000, 13);
    rig.net.Attach(client.get());
    client->SetMeasureWindow(Millis(20), Millis(120));
    client->StartLoad(0, Millis(120));
    rig.sim.RunUntil(Millis(400));
    return client->latencies().Percentile(99);
  };
  const int64_t jbsq_p99 = run(RouterPolicy::kJbsq);
  const int64_t random_p99 = run(RouterPolicy::kRandom);
  EXPECT_LT(jbsq_p99, random_p99) << "JBSQ should improve the tail";
  EXPECT_LT(static_cast<double>(jbsq_p99), 0.8 * static_cast<double>(random_p99));
}

}  // namespace
}  // namespace hovercraft
