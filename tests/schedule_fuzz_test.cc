// Randomized schedule exploration of the core protocol invariants.
//
// The paper leaves model-checking HovercRaft++ to future work (section 5);
// this suite approximates it with randomized partial-order sampling: message
// delays are drawn per delivery, messages drop at random, nodes crash and
// revive on a random schedule, and after every run the Raft safety
// invariants are asserted:
//   I1 Election safety   — at most one leader per term, ever.
//   I2 Log matching      — equal (index, term) implies equal entry identity
//                          and equal prefixes.
//   I3 Leader completeness / state machine safety — applied sequences on any
//                          two nodes are prefixes of each other.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/buffer.h"
#include "src/raft/node.h"
#include "src/sim/simulator.h"

namespace hovercraft {
namespace {

class FuzzHarness;

class FuzzEnv final : public RaftNode::Env {
 public:
  FuzzEnv(FuzzHarness* harness, NodeId self) : harness_(harness), self_(self) {}

  void SendToPeer(NodeId peer, MessagePtr msg) override;
  void SendToAggregator(MessagePtr /*msg*/) override {}
  std::shared_ptr<const RpcRequest> LookupUnordered(const RequestId& rid) override {
    auto it = unordered_.find(rid);
    return it == unordered_.end() ? nullptr : it->second;
  }
  void ConsumeUnordered(const RequestId& rid) override { unordered_.erase(rid); }
  void StoreRecovered(const RequestId& rid,
                      std::shared_ptr<const RpcRequest> request) override {
    unordered_[rid] = std::move(request);
  }
  SnapshotCapture CaptureSnapshot() override {
    // The test state machine is the applied rid sequence; serialize it.
    BufferWriter w;
    w.PutU64(applied_idx_);
    w.PutU64(applied.size());
    for (const RequestId& rid : applied) {
      w.PutU32(static_cast<uint32_t>(rid.client));
      w.PutU64(rid.seq);
    }
    return SnapshotCapture{MakeBody(w.TakeBytes()), applied_idx_};
  }
  void RestoreSnapshot(const Body& state, LogIndex last_included, Term /*included_term*/,
                       MembershipConfigPtr /*config*/, LogIndex /*config_idx*/) override {
    BufferReader r(*state);
    uint64_t applied_count = 0;
    uint64_t count = 0;
    HC_CHECK(r.GetU64(applied_count).ok());
    HC_CHECK(r.GetU64(count).ok());
    applied.clear();
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t client = 0;
      uint64_t seq = 0;
      HC_CHECK(r.GetU32(client).ok());
      HC_CHECK(r.GetU64(seq).ok());
      applied.push_back(RequestId{static_cast<HostId>(client), seq});
    }
    applied_idx_ = std::max<LogIndex>(applied_idx_, last_included);
    ++snapshots_restored;
  }
  void OnCommitAdvanced(LogIndex commit) override;
  void OnLeadershipChanged(bool /*is_leader*/) override {}
  void DrainUnorderedIntoLog() override;

  void AddUnordered(std::shared_ptr<const RpcRequest> request) {
    unordered_[request->rid()] = std::move(request);
  }

  std::vector<RequestId> applied;
  uint64_t snapshots_restored = 0;

 private:
  friend class FuzzHarness;
  FuzzHarness* harness_;
  NodeId self_;
  std::unordered_map<RequestId, std::shared_ptr<const RpcRequest>, RequestIdHash> unordered_;
  LogIndex applied_idx_ = 0;
};

class FuzzHarness {
 public:
  FuzzHarness(int32_t n, uint64_t seed, bool metadata_mode, double drop_probability,
              int32_t initial_voters = 0, bool read_index = false,
              TimeNs max_delay = Millis(2))
      : rng_(seed), drop_probability_(drop_probability), max_delay_(max_delay) {
    for (NodeId i = 0; i < n; ++i) {
      RaftOptions opts;
      opts.id = i;
      opts.cluster_size = n;
      opts.initial_voters = initial_voters;
      opts.metadata_only = metadata_mode;
      opts.read_index = read_index;
      opts.election_timeout_min = Millis(4);
      opts.election_timeout_max = Millis(12);
      opts.heartbeat_interval = Millis(1);
      envs_.push_back(std::make_unique<FuzzEnv>(this, i));
      nodes_.push_back(
          std::make_unique<RaftNode>(&sim_, seed * 31 + static_cast<uint64_t>(i), opts,
                                     envs_.back().get()));
      down_.push_back(false);
    }
    for (auto& node : nodes_) {
      node->Start();
    }
  }

  void Deliver(NodeId from, NodeId to, MessagePtr msg) {
    if (down_[static_cast<size_t>(from)] || rng_.NextBool(drop_probability_)) {
      return;
    }
    // Random delay in [1us, max_delay_]: reordering across in-flight
    // messages. The read-lease runs tighten the bound so the lease window
    // (election_timeout_min) dominates message skew by a wide margin.
    const TimeNs delay =
        Micros(1) + static_cast<TimeNs>(rng_.NextBelow(static_cast<uint64_t>(max_delay_)));
    sim_.After(delay, [this, to, msg = std::move(msg)]() {
      if (down_[static_cast<size_t>(to)]) {
        return;
      }
      RaftNode& n = *nodes_[static_cast<size_t>(to)];
      if (const auto* ae = dynamic_cast<const AppendEntriesReq*>(msg.get())) {
        n.OnAppendEntries(*ae, false);
      } else if (const auto* rep = dynamic_cast<const AppendEntriesRep*>(msg.get())) {
        n.OnAppendEntriesRep(*rep);
      } else if (const auto* v = dynamic_cast<const RequestVoteReq*>(msg.get())) {
        n.OnRequestVote(*v);
      } else if (const auto* vr = dynamic_cast<const RequestVoteRep*>(msg.get())) {
        n.OnRequestVoteRep(*vr);
      } else if (const auto* rq = dynamic_cast<const RecoveryReq*>(msg.get())) {
        n.OnRecoveryReq(*rq);
      } else if (const auto* rp = dynamic_cast<const RecoveryRep*>(msg.get())) {
        n.OnRecoveryRep(*rp);
      } else if (const auto* sn = dynamic_cast<const InstallSnapshotReq*>(msg.get())) {
        n.OnInstallSnapshot(*sn);
      } else if (const auto* sr = dynamic_cast<const InstallSnapshotRep*>(msg.get())) {
        n.OnInstallSnapshotRep(*sr);
      }
      RecordLeaders();
    });
  }

  void RecordLeaders() {
    for (const auto& node : nodes_) {
      if (node->IsLeader()) {
        auto [it, inserted] = leader_of_term_.try_emplace(node->term(), node->id());
        // I1: a term never has two distinct leaders.
        ASSERT_EQ(it->second, node->id())
            << "two leaders in term " << node->term();
        (void)inserted;
      }
    }
  }

  // Randomized reconfiguration schedule: at random times, ask whoever leads
  // right then to add a random non-member or remove a random member (never
  // below two). Rejected proposals (a change already in flight, no leader)
  // are dropped on the floor — the next event simply tries again — so the
  // schedule exercises proposal, rollback-on-truncation, learner catch-up
  // and self-removal in arbitrary interleavings with crashes and loss.
  void ArmChurn(TimeNs duration, int events) {
    const int32_t n = static_cast<int32_t>(nodes_.size());
    for (int i = 0; i < events; ++i) {
      const TimeNs when =
          static_cast<TimeNs>(rng_.NextBelow(static_cast<uint64_t>(duration)));
      sim_.At(when, [this, n]() {
        RaftNode* leader = nullptr;
        for (auto& node : nodes_) {
          if (!down_[static_cast<size_t>(node->id())] && node->IsLeader()) {
            leader = node.get();
            break;
          }
        }
        if (leader == nullptr) {
          return;
        }
        const MembershipConfig& cfg = leader->active_config();
        std::vector<NodeId> in;
        std::vector<NodeId> out;
        for (NodeId id = 0; id < n; ++id) {
          (cfg.IsMember(id) ? in : out).push_back(id);
        }
        const bool can_add = !out.empty();
        const bool can_remove = in.size() > 2;
        if (!can_add && !can_remove) {
          return;
        }
        const bool add = can_add && (!can_remove || rng_.NextBool(0.5));
        if (add) {
          leader->StartAddServer(out[rng_.NextBelow(out.size())]);
        } else {
          leader->StartRemoveServer(in[rng_.NextBelow(in.size())]);
        }
      });
    }
  }

  // Randomized adversarial schedule (docs/hardening.md): forged higher-term
  // RequestVotes injected under a member's identity and election-timer skews
  // planted and later restored. With the defenses at their defaults these
  // must never break election safety (RecordLeaders asserts I1 on every
  // delivery) or log matching, and the cluster must still make progress.
  void ArmAttacks(TimeNs duration, int events) {
    const int32_t n = static_cast<int32_t>(nodes_.size());
    for (int i = 0; i < events; ++i) {
      const TimeNs when =
          static_cast<TimeNs>(rng_.NextBelow(static_cast<uint64_t>(duration)));
      const bool forge = rng_.NextBool(0.5);
      sim_.At(when, [this, n, forge]() {
        const NodeId target = static_cast<NodeId>(rng_.NextBelow(static_cast<uint64_t>(n)));
        if (down_[static_cast<size_t>(target)]) {
          return;
        }
        if (forge) {
          Term max_term = 0;
          for (const auto& node : nodes_) {
            max_term = std::max(max_term, node->term());
          }
          const NodeId forged_id =
              static_cast<NodeId>(rng_.NextBelow(static_cast<uint64_t>(n)));
          nodes_[static_cast<size_t>(target)]->OnRequestVote(
              RequestVoteReq(max_term + 50, forged_id, /*last_idx=*/0, /*last_term=*/0));
        } else {
          nodes_[static_cast<size_t>(target)]->SkewElectionTimer(0.05 +
                                                                 0.2 * rng_.NextDouble());
          sim_.After(Millis(10), [this, target]() {
            nodes_[static_cast<size_t>(target)]->SkewElectionTimer(1.0);
          });
        }
        RecordLeaders();
      });
    }
  }

  // Read-linearizability probes: at random times ask whoever leads for a
  // ReadIndex grant and assert it covers everything committed anywhere so
  // far. A stale leader whose lease lapsed must refuse; a grant below the
  // global commit watermark would be a stale read.
  void ArmReadProbes(TimeNs duration, int events) {
    for (int i = 0; i < events; ++i) {
      const TimeNs when =
          static_cast<TimeNs>(rng_.NextBelow(static_cast<uint64_t>(duration)));
      sim_.At(when, [this]() {
        for (auto& node : nodes_) {
          if (down_[static_cast<size_t>(node->id())] || !node->IsLeader()) {
            continue;
          }
          const LogIndex watermark = commit_watermark_;
          const RaftNode::ReadGrant grant = node->AcquireReadIndex();
          if (grant.granted) {
            ++reads_granted_;
            EXPECT_GE(grant.read_index, watermark)
                << "stale ReadIndex grant from node " << node->id() << " at term "
                << node->term();
          }
        }
      });
    }
  }

  void Run(uint64_t client_requests, TimeNs duration) {
    // Inject client traffic at random times to random (possibly wrong)
    // nodes; in metadata mode payloads are seeded into random subsets of the
    // unordered stores, exercising the recovery path.
    const int32_t n = static_cast<int32_t>(nodes_.size());
    for (uint64_t i = 1; i <= client_requests; ++i) {
      const TimeNs when = static_cast<TimeNs>(rng_.NextBelow(static_cast<uint64_t>(duration)));
      sim_.At(when, [this, i, n]() {
        auto req = std::make_shared<RpcRequest>(RequestId{100, i},
                                                rng_.NextBool(0.3)
                                                    ? R2p2Policy::kReplicatedReqRo
                                                    : R2p2Policy::kReplicatedReq,
                                                MakeBody(std::vector<uint8_t>(16)));
        for (NodeId node = 0; node < n; ++node) {
          if (rng_.NextBool(0.9)) {
            envs_[static_cast<size_t>(node)]->AddUnordered(req);
          }
        }
        for (NodeId node = 0; node < n; ++node) {
          if (nodes_[static_cast<size_t>(node)]->IsLeader()) {
            nodes_[static_cast<size_t>(node)]->SubmitRequest(req);
            break;
          }
        }
      });
      // Random crash/revive events. Revival models a machine rejoining with
      // its (persistent) log intact.
      if (i % 7 == 0) {
        const TimeNs when_crash =
            static_cast<TimeNs>(rng_.NextBelow(static_cast<uint64_t>(duration)));
        const NodeId victim = static_cast<NodeId>(rng_.NextBelow(static_cast<uint64_t>(n)));
        sim_.At(when_crash, [this, victim]() {
          // Never take down a majority at once.
          int up = 0;
          for (bool d : down_) {
            up += d ? 0 : 1;
          }
          if (up > static_cast<int>(down_.size()) / 2 + 1) {
            down_[static_cast<size_t>(victim)] = true;
          }
        });
        sim_.At(when_crash + Millis(20),
                [this, victim]() { down_[static_cast<size_t>(victim)] = false; });
      }
    }
    sim_.RunUntil(duration);
    // Heal everything and let the cluster settle so invariants can be
    // checked on a quiescent state.
    for (size_t i = 0; i < down_.size(); ++i) {
      down_[i] = false;
    }
    drop_probability_ = 0.0;
    sim_.RunUntil(duration + Millis(300));
  }

  void CheckInvariants() {
    // I2: log matching on the overlapping, uncompacted ranges.
    for (size_t a = 0; a < nodes_.size(); ++a) {
      for (size_t b = a + 1; b < nodes_.size(); ++b) {
        const RaftLog& la = nodes_[a]->log();
        const RaftLog& lb = nodes_[b]->log();
        const LogIndex lo = std::max(la.first_index(), lb.first_index());
        const LogIndex hi = std::min(la.last_index(), lb.last_index());
        bool matched_suffix = false;
        for (LogIndex idx = hi; idx >= lo && idx >= 1; --idx) {
          const LogEntry& ea = la.At(idx);
          const LogEntry& eb = lb.At(idx);
          if (ea.term == eb.term) {
            EXPECT_EQ(ea.noop, eb.noop) << "idx " << idx;
            EXPECT_EQ(ea.rid, eb.rid) << "idx " << idx;
            // Config entries must agree too: same position, same membership.
            EXPECT_EQ(ea.config != nullptr, eb.config != nullptr) << "idx " << idx;
            if (ea.config != nullptr && eb.config != nullptr) {
              EXPECT_EQ(ea.config->voters, eb.config->voters) << "idx " << idx;
              EXPECT_EQ(ea.config->learners, eb.config->learners) << "idx " << idx;
            }
            matched_suffix = true;
          } else {
            // Terms may differ only above both commit points, i.e. in
            // unreconciled suffixes; once a match is seen walking down, all
            // lower entries must match too.
            EXPECT_FALSE(matched_suffix)
                << "log matching violated at idx " << idx << " between node " << a
                << " and node " << b;
          }
        }
      }
    }
    // I3: applied sequences are prefixes of one another.
    for (size_t a = 0; a < envs_.size(); ++a) {
      for (size_t b = a + 1; b < envs_.size(); ++b) {
        const auto& va = envs_[a]->applied;
        const auto& vb = envs_[b]->applied;
        const size_t common = std::min(va.size(), vb.size());
        for (size_t i = 0; i < common; ++i) {
          ASSERT_EQ(va[i], vb[i]) << "applied sequences diverge at " << i << " between node "
                                  << a << " and node " << b;
        }
      }
    }
  }

  uint64_t TotalApplied() const {
    uint64_t total = 0;
    for (const auto& env : envs_) {
      total = std::max<uint64_t>(total, env->applied.size());
    }
    return total;
  }

  Simulator sim_;
  Rng rng_;
  double drop_probability_;
  TimeNs max_delay_;
  std::vector<std::unique_ptr<FuzzEnv>> envs_;
  std::vector<std::unique_ptr<RaftNode>> nodes_;
  std::vector<bool> down_;
  std::map<Term, NodeId> leader_of_term_;
  // Highest commit index observed on any node, ever (committed prefixes
  // agree by log matching, so a bare index is comparable cluster-wide).
  LogIndex commit_watermark_ = 0;
  uint64_t reads_granted_ = 0;
};

void FuzzEnv::SendToPeer(NodeId peer, MessagePtr msg) {
  harness_->Deliver(self_, peer, std::move(msg));
}

void FuzzEnv::OnCommitAdvanced(LogIndex commit) {
  harness_->commit_watermark_ = std::max(harness_->commit_watermark_, commit);
  RaftNode& node = *harness_->nodes_[static_cast<size_t>(self_)];
  while (applied_idx_ < commit) {
    ++applied_idx_;
    const LogEntry& e = node.log().At(applied_idx_);
    if (!e.noop) {
      applied.push_back(e.rid);
    }
    node.OnApplied(applied_idx_);
  }
}

void FuzzEnv::DrainUnorderedIntoLog() {
  RaftNode& node = *harness_->nodes_[static_cast<size_t>(self_)];
  auto snapshot = unordered_;
  for (auto& [rid, req] : snapshot) {
    node.SubmitRequest(req);
  }
}

struct FuzzParam {
  int32_t nodes;
  bool metadata;
  int drop_permille;
  // Dynamic membership: extra servers started outside the initial voter set,
  // and how many randomized add/remove proposals to fire during the run.
  int32_t spares = 0;
  int churn_events = 0;
  // Adversarial hardening: randomized forged-vote/timer-skew injections, and
  // ReadIndex probes checked against the global commit watermark.
  int attack_events = 0;
  int read_probes = 0;
  // Per-delivery delay bound. The read-probe runs tighten it so the lease
  // argument (no new leader within election_timeout_min of quorum contact)
  // holds with a wide margin over message skew.
  TimeNs max_delay = Millis(2);
};

class ScheduleFuzzTest : public ::testing::TestWithParam<std::tuple<int, FuzzParam>> {};

TEST_P(ScheduleFuzzTest, SafetyHoldsUnderRandomSchedules) {
  const auto [seed, param] = GetParam();
  FuzzHarness harness(param.nodes + param.spares, static_cast<uint64_t>(seed) * 7919 + 13,
                      param.metadata, param.drop_permille / 1000.0,
                      param.spares > 0 ? param.nodes : 0,
                      /*read_index=*/param.read_probes > 0, param.max_delay);
  if (param.churn_events > 0) {
    harness.ArmChurn(Millis(150), param.churn_events);
  }
  if (param.attack_events > 0) {
    harness.ArmAttacks(Millis(150), param.attack_events);
  }
  if (param.read_probes > 0) {
    harness.ArmReadProbes(Millis(150), param.read_probes);
  }
  harness.Run(/*client_requests=*/120, /*duration=*/Millis(150));
  if (::testing::Test::HasFatalFailure()) {
    return;
  }
  harness.CheckInvariants();
  // Progress: the cluster committed at least part of the workload even under
  // crashes and loss (liveness smoke, not an invariant).
  EXPECT_GT(harness.TotalApplied(), 10u);
  if (param.read_probes > 0) {
    // The probes genuinely exercised the lease path.
    EXPECT_GT(harness.reads_granted_, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ScheduleFuzzTest,
    ::testing::Combine(::testing::Range(0, 12),
                       ::testing::Values(FuzzParam{3, false, 20}, FuzzParam{3, true, 50},
                                         FuzzParam{5, true, 20}, FuzzParam{5, false, 100})));

// Election safety and log matching must survive arbitrary interleavings of
// reconfiguration with message loss, reordering and crashes: randomized
// add/remove schedules against a 3-voter cluster with spares, in both the
// full-log and metadata-only replication modes.
INSTANTIATE_TEST_SUITE_P(
    ChurnSchedules, ScheduleFuzzTest,
    ::testing::Combine(::testing::Range(0, 12),
                       ::testing::Values(FuzzParam{3, false, 20, 2, 12},
                                         FuzzParam{3, true, 50, 2, 12},
                                         FuzzParam{3, true, 20, 3, 20})));

// Randomized attack schedules: forged votes and timer skews interleaved with
// drops and crashes. Election safety and log matching must hold with the
// defenses at their defaults, and the cluster must keep committing.
INSTANTIATE_TEST_SUITE_P(
    AttackSchedules, ScheduleFuzzTest,
    ::testing::Combine(::testing::Range(0, 12),
                       ::testing::Values(FuzzParam{3, false, 20, 0, 0, 16},
                                         FuzzParam{3, true, 50, 0, 0, 16},
                                         FuzzParam{5, true, 20, 0, 0, 24})));

// Read-lease probes under attack + loss: every granted ReadIndex must cover
// the global commit watermark (no stale grants), across seeds.
INSTANTIATE_TEST_SUITE_P(
    ReadLeaseSchedules, ScheduleFuzzTest,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(FuzzParam{3, false, 20, 0, 0, 8, 40, Micros(200)},
                                         FuzzParam{3, true, 50, 0, 0, 0, 40, Micros(200)})));

}  // namespace
}  // namespace hovercraft
