// Wire conformance: typed R2P2 messages survive a full serialize ->
// fragment -> (shuffle) -> reassemble -> decode round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/common/random.h"
#include "src/r2p2/serdes.h"

namespace hovercraft {
namespace {

constexpr size_t kMtu = 1436;

Body PatternBody(size_t n) {
  std::vector<uint8_t> bytes(n);
  for (size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<uint8_t>(i * 131 + 3);
  }
  return MakeBody(std::move(bytes));
}

// Decoded bodies are zero-copy slices of the reassembly pool, so the caller
// owns the pool and must declare it before any decoded message it keeps
// (BufPool ownership rules: the pool's leak check runs at its destruction).
Result<DecodedR2p2Message> RoundTrip(BufPool& pool, const std::vector<WirePacket>& packets,
                                     Rng* shuffle_rng) {
  std::vector<size_t> order(packets.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  if (shuffle_rng != nullptr) {
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[shuffle_rng->NextBelow(i)]);
    }
  }
  Reassembler reassembler(&pool);
  for (size_t i = 0; i < order.size(); ++i) {
    Result<bool> done = reassembler.Feed(packets[order[i]], 0);
    if (!done.ok()) {
      return done.status();
    }
    if (done.value()) {
      EXPECT_EQ(i, order.size() - 1) << "completed before all fragments fed";
      return DecodeR2p2Message(reassembler.TakeCompleted());
    }
  }
  return InternalError("message never completed");
}

TEST(SerdesTest, RequestIdentityRoundTrip) {
  const RequestId rid{42, 0x12345678ull};
  const WireHeader h = HeaderForRequest(rid, R2p2Policy::kReplicatedReq, WireType::kRequest);
  EXPECT_EQ(RequestIdFromHeader(h), rid);
}

TEST(SerdesTest, SmallRequestRoundTrip) {
  BufPool pool;
  RpcRequest req(RequestId{7, 99}, R2p2Policy::kReplicatedReqRo, PatternBody(24));
  auto packets = SerializeRequest(req, kMtu);
  ASSERT_EQ(packets.size(), 1u);
  auto decoded = RoundTrip(pool, packets, nullptr);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().type, WireType::kRequest);
  ASSERT_NE(decoded.value().request, nullptr);
  EXPECT_EQ(decoded.value().request->rid(), req.rid());
  EXPECT_EQ(decoded.value().request->policy(), R2p2Policy::kReplicatedReqRo);
  EXPECT_EQ(*decoded.value().request->body(), *req.body());
}

TEST(SerdesTest, LargeResponseRoundTripShuffled) {
  BufPool pool;
  RpcResponse resp(RequestId{3, 1234567ull}, PatternBody(60'000));
  auto packets = SerializeResponse(resp, kMtu);
  EXPECT_GT(packets.size(), 40u);
  Rng rng(5);
  auto decoded = RoundTrip(pool, packets, &rng);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().type, WireType::kResponse);
  ASSERT_NE(decoded.value().response, nullptr);
  EXPECT_EQ(decoded.value().response->rid(), resp.rid());
  EXPECT_EQ(*decoded.value().response->body(), *resp.body());
}

TEST(SerdesTest, EmptyBodyRequest) {
  BufPool pool;
  RpcRequest req(RequestId{1, 1}, R2p2Policy::kReplicatedReq, nullptr);
  auto packets = SerializeRequest(req, kMtu);
  ASSERT_EQ(packets.size(), 1u);
  auto decoded = RoundTrip(pool, packets, nullptr);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().request->body()->size(), 0u);
}

TEST(SerdesTest, FeedbackAndNackCarryIdentityOnly) {
  BufPool pool;
  const RequestId rid{9, 777};
  auto fb = SerializeFeedback(FeedbackMsg(rid));
  ASSERT_EQ(fb.size(), 1u);
  auto decoded_fb = RoundTrip(pool, fb, nullptr);
  ASSERT_TRUE(decoded_fb.ok());
  EXPECT_EQ(decoded_fb.value().type, WireType::kFeedback);
  EXPECT_EQ(decoded_fb.value().rid, rid);

  auto nack = SerializeNack(NackMsg(rid));
  auto decoded_nack = RoundTrip(pool, nack, nullptr);
  ASSERT_TRUE(decoded_nack.ok());
  EXPECT_EQ(decoded_nack.value().type, WireType::kNack);
  EXPECT_EQ(decoded_nack.value().rid, rid);
}

TEST(SerdesTest, PolicySurvivesTheWire) {
  BufPool pool;
  for (R2p2Policy policy : {R2p2Policy::kUnrestricted, R2p2Policy::kReplicatedReq,
                            R2p2Policy::kReplicatedReqRo}) {
    RpcRequest req(RequestId{2, 5}, policy, PatternBody(8));
    auto decoded = RoundTrip(pool, SerializeRequest(req, kMtu), nullptr);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().request->policy(), policy);
  }
}

TEST(SerdesTest, AttemptAndWatermarkSurviveTheWire) {
  BufPool pool;
  // The exactly-once extension rides in the request body: attempt number and
  // the client's ack watermark must round-trip, and the payload after them
  // must be untouched.
  RpcRequest req(RequestId{4, 17}, R2p2Policy::kReplicatedReq, PatternBody(40),
                 /*attempt=*/3, /*ack_watermark=*/0x1122334455667788ull);
  EXPECT_TRUE(req.is_retransmit());
  auto decoded = RoundTrip(pool, SerializeRequest(req, kMtu), nullptr);
  ASSERT_TRUE(decoded.ok());
  const RpcRequest& out = *decoded.value().request;
  EXPECT_EQ(out.attempt(), 3u);
  EXPECT_TRUE(out.is_retransmit());
  EXPECT_EQ(out.ack_watermark(), 0x1122334455667788ull);
  EXPECT_EQ(*out.body(), *req.body());

  // First attempts are the default and not retransmissions.
  RpcRequest fresh(RequestId{4, 18}, R2p2Policy::kReplicatedReq, PatternBody(8));
  EXPECT_EQ(fresh.attempt(), 1u);
  EXPECT_FALSE(fresh.is_retransmit());
  auto fresh_decoded = RoundTrip(pool, SerializeRequest(fresh, kMtu), nullptr);
  ASSERT_TRUE(fresh_decoded.ok());
  EXPECT_EQ(fresh_decoded.value().request->attempt(), 1u);
  EXPECT_EQ(fresh_decoded.value().request->ack_watermark(), 0u);
}

TEST(SerdesTest, SequenceWrapsStayDistinctWithin32Bits) {
  // The packed (req_id, src_port) fields disambiguate 2^32 in-flight seqs.
  const RequestId a{1, 0x0000FFFFull};
  const RequestId b{1, 0x0001FFFFull};
  const WireHeader ha = HeaderForRequest(a, R2p2Policy::kReplicatedReq, WireType::kRequest);
  const WireHeader hb = HeaderForRequest(b, R2p2Policy::kReplicatedReq, WireType::kRequest);
  EXPECT_NE(RequestIdFromHeader(ha), RequestIdFromHeader(hb));
  EXPECT_EQ(RequestIdFromHeader(ha), a);
  EXPECT_EQ(RequestIdFromHeader(hb), b);
}

}  // namespace
}  // namespace hovercraft
