// Shard-move-under-load chaos: the Wing & Gong linearizability checker runs
// over a client history that spans live range moves (and optionally a source-
// leader crash mid-move). See src/shard/shard_chaos.h for the pass criteria.
#include "src/shard/shard_chaos.h"

#include <gtest/gtest.h>

namespace hovercraft {
namespace {

// Default there-and-back schedule at the issue's 80 kRPS aggregate.
TEST(ShardChaosTest, MoveThereAndBackUnderLoadIsLinearizable) {
  ShardChaosConfig config;
  config.seed = 3;
  const ShardChaosResult result = RunShardChaos(config);
  EXPECT_TRUE(result.ok()) << result.Describe();
  EXPECT_EQ(result.moves_started, 2u);
  EXPECT_EQ(result.moves_completed, 2u);
  EXPECT_EQ(result.moves_failed, 0u);
  EXPECT_EQ(result.final_epoch, 3u);  // two cutovers
  // The move window really was exercised: clients chased the range.
  EXPECT_GT(result.wrong_shard_nacks, 0u);
  EXPECT_GT(result.redirects, 0u);
  EXPECT_GT(result.completed, 1000u);
  EXPECT_EQ(result.double_applies, 0u);
  EXPECT_GT(result.capture_bytes, 0u);
}

TEST(ShardChaosTest, SourceLeaderCrashMidMoveStillLinearizable) {
  ShardChaosConfig config;
  config.seed = 5;
  config.kill_leader_mid_move = true;
  const ShardChaosResult result = RunShardChaos(config);
  EXPECT_TRUE(result.ok()) << result.Describe();
  EXPECT_EQ(result.moves_completed, 2u);
  EXPECT_EQ(result.double_applies, 0u);
}

TEST(ShardChaosTest, FourGroupsWithScriptedMoves) {
  ShardChaosConfig config;
  config.seed = 9;
  config.groups = 4;
  config.clients = 4;
  config.duration = Millis(80);
  // Rotate one range around three groups.
  ShardChaosConfig::MoveEvent a{Millis(20), 0, 7, 1};
  ShardChaosConfig::MoveEvent b{Millis(40), 0, 7, 2};
  ShardChaosConfig::MoveEvent c{Millis(60), 0, 7, 0};
  config.moves = {a, b, c};
  const ShardChaosResult result = RunShardChaos(config);
  EXPECT_TRUE(result.ok()) << result.Describe();
  EXPECT_EQ(result.moves_completed, 3u);
  EXPECT_EQ(result.final_epoch, 4u);
}

}  // namespace
}  // namespace hovercraft
