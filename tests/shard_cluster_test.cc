// Integration tests for the multi-group ShardedCluster (src/shard): N
// HovercRaft groups over one fabric, keyspace scale-out, a live range move
// under load with exactly-once preserved, and metrics namespacing.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <sstream>
#include <vector>

#include "src/app/kvstore/service.h"
#include "src/app/synthetic.h"
#include "src/chaos/kv_workload.h"
#include "src/loadgen/client.h"
#include "src/loadgen/workload.h"
#include "src/obs/metrics.h"
#include "src/shard/sharded_cluster.h"

namespace hovercraft {
namespace {

ShardedClusterConfig BaseConfig(int32_t groups) {
  ShardedClusterConfig cfg;
  cfg.groups = groups;
  cfg.nodes_per_group = 3;
  cfg.seed = 11;
  return cfg;
}

TEST(ShardedClusterTest, ScaleOutSpreadsLoadAcrossGroups) {
  ShardedClusterConfig cfg = BaseConfig(4);
  cfg.app_factory = []() { return std::make_unique<SyntheticService>(); };
  ShardedCluster sharded(cfg);
  ASSERT_TRUE(sharded.WaitForAllLeaders());

  // One client spraying the whole keyspace through the shard router.
  SyntheticWorkloadConfig wc;
  wc.random_shard_slot = true;  // uniform over all 64 slots
  auto client = std::make_unique<ClientHost>(
      &sharded.sim(), sharded.config().costs,
      [&sharded]() { return sharded.group(GroupId{0}).ClientTarget(); },
      std::make_unique<SyntheticWorkload>(wc), 80'000, 77);
  client->EnableSharding([&sharded](uint32_t slot) { return sharded.RouteOf(slot); });
  sharded.network().Attach(client.get());

  const TimeNs t0 = sharded.sim().Now();
  client->StartLoad(t0, t0 + Millis(20));
  sharded.sim().RunUntil(t0 + Millis(40));

  EXPECT_GT(client->total_sent(), 500u);
  EXPECT_EQ(client->total_completed(), client->total_sent());
  // A stable map never redirects.
  EXPECT_EQ(client->total_redirects(), 0u);
  EXPECT_EQ(sharded.TotalWrongShardNacks(), 0u);
  // Every group took a meaningful share (uniform slots, 16 slots each).
  for (int32_t g = 0; g < 4; ++g) {
    EXPECT_GT(sharded.group(GroupId{g}).TotalExecuted(), 0u) << "group " << g;
  }
  EXPECT_TRUE(sharded.AllWatchdogsOk()) << sharded.WatchdogSummary();
}

TEST(ShardedClusterTest, LiveMoveUnderLoadKeepsExactlyOnce) {
  ShardedClusterConfig cfg = BaseConfig(2);
  cfg.app_factory = []() { return std::make_unique<KvService>(); };
  ShardedCluster sharded(cfg);
  ASSERT_TRUE(sharded.WaitForAllLeaders());

  std::vector<std::unique_ptr<ClientHost>> clients;
  for (int i = 0; i < 2; ++i) {
    ChaosKvWorkloadConfig wc;
    wc.keys = 12;  // hot keys spread over both groups' ranges
    wc.value_tag = static_cast<uint64_t>(i);
    auto client = std::make_unique<ClientHost>(
        &sharded.sim(), sharded.config().costs,
        [&sharded]() { return sharded.group(GroupId{0}).ClientTarget(); },
        std::make_unique<ChaosKvWorkload>(wc), 30'000, 900 + static_cast<uint64_t>(i));
    // One-lookup-behind map cache: each resolve returns the previously
    // fetched route and refreshes the cache, so the first send after a
    // cutover deterministically hits the old owner and gets redirected.
    auto cache = std::make_shared<std::array<ClientHost::ShardRoute, kShardSlots>>();
    client->EnableSharding([&sharded, cache](uint32_t slot) {
      ClientHost::ShardRoute stale = (*cache)[slot];
      (*cache)[slot] = sharded.RouteOf(slot);
      return stale.epoch == 0 ? (*cache)[slot] : stale;
    });
    client->set_outstanding_limit(8, Millis(40));
    ClientHost::RetryPolicy rp;
    rp.enabled = true;
    rp.initial_backoff = Micros(300);
    rp.max_backoff = Millis(2);
    client->set_retry_policy(rp);
    sharded.network().Attach(client.get());
    clients.push_back(std::move(client));
  }

  const TimeNs t0 = sharded.sim().Now();
  const auto g0_slots = sharded.shard_map().SlotsOf(GroupId{0});
  sharded.sim().At(t0 + Millis(10), [&sharded, &g0_slots]() {
    sharded.StartMove(g0_slots.front(), g0_slots.back(), GroupId{1});
  });
  for (auto& client : clients) {
    client->StartLoad(t0, t0 + Millis(30));
  }
  sharded.sim().RunUntil(t0 + Millis(80));

  // The move completed and flipped ownership.
  EXPECT_EQ(sharded.coordinator().stats().moves_started, 1u);
  EXPECT_EQ(sharded.coordinator().stats().moves_completed, 1u);
  EXPECT_EQ(sharded.coordinator().stats().moves_failed, 0u);
  EXPECT_EQ(sharded.shard_map().epoch(), 2u);
  for (uint32_t slot : g0_slots) {
    EXPECT_EQ(sharded.shard_map().OwnerOf(slot), GroupId{1});
  }
  EXPECT_GT(sharded.coordinator().stats().capture_bytes, 0u);

  // Traffic into the moved range was redirected, never lost or doubled.
  uint64_t completed = 0, sent = 0, abandoned = 0;
  for (const auto& client : clients) {
    completed += client->total_completed();
    sent += client->total_sent();
    abandoned += client->total_abandoned();
  }
  EXPECT_GT(sent, 200u);
  EXPECT_EQ(completed, sent);
  EXPECT_EQ(abandoned, 0u);
  EXPECT_GT(sharded.TotalWrongShardNacks(), 0u);
  uint64_t redirects = 0;
  for (const auto& client : clients) {
    redirects += client->total_redirects();
  }
  EXPECT_GT(redirects, 0u);
  EXPECT_EQ(sharded.TotalDoubleApplies(), 0u);
  EXPECT_TRUE(sharded.AllWatchdogsOk()) << sharded.WatchdogSummary();

  // Replicas inside each group agree on the post-move state.
  for (int32_t g = 0; g < 2; ++g) {
    Cluster& cluster = sharded.group(GroupId{g});
    const uint64_t digest0 = cluster.server(0).app().Digest();
    for (NodeId n = 1; n < cluster.total_node_count(); ++n) {
      EXPECT_EQ(cluster.server(n).app().Digest(), digest0) << "group " << g << " node " << n;
    }
  }
}

TEST(ShardedClusterTest, MoveBackRestoresOriginalOwnership) {
  ShardedClusterConfig cfg = BaseConfig(2);
  cfg.app_factory = []() { return std::make_unique<KvService>(); };
  ShardedCluster sharded(cfg);
  ASSERT_TRUE(sharded.WaitForAllLeaders());

  const auto g0_slots = sharded.shard_map().SlotsOf(GroupId{0});
  sharded.StartMove(g0_slots.front(), g0_slots.back(), GroupId{1});
  sharded.sim().RunUntil(sharded.sim().Now() + Millis(20));
  ASSERT_EQ(sharded.coordinator().stats().moves_completed, 1u);

  sharded.StartMove(g0_slots.front(), g0_slots.back(), GroupId{0});
  sharded.sim().RunUntil(sharded.sim().Now() + Millis(20));
  EXPECT_EQ(sharded.coordinator().stats().moves_completed, 2u);
  EXPECT_EQ(sharded.shard_map().epoch(), 3u);
  for (uint32_t slot : g0_slots) {
    EXPECT_EQ(sharded.shard_map().OwnerOf(slot), GroupId{0});
  }
  EXPECT_TRUE(sharded.coordinator().idle());
}

TEST(ShardedClusterTest, MoveToSelfIsRejected) {
  ShardedClusterConfig cfg = BaseConfig(2);
  cfg.app_factory = []() { return std::make_unique<KvService>(); };
  ShardedCluster sharded(cfg);
  ASSERT_TRUE(sharded.WaitForAllLeaders());

  sharded.StartMove(0, 3, GroupId{0});  // slots 0..3 already belong to group 0
  sharded.sim().RunUntil(sharded.sim().Now() + Millis(5));
  EXPECT_EQ(sharded.coordinator().stats().moves_rejected, 1u);
  EXPECT_EQ(sharded.coordinator().stats().moves_started, 0u);
  EXPECT_EQ(sharded.shard_map().epoch(), 1u);
}

TEST(ShardedClusterTest, MetricsNamespacesDoNotAlias) {
  ShardedClusterConfig cfg = BaseConfig(2);
  cfg.app_factory = []() { return std::make_unique<SyntheticService>(); };
  ShardedCluster sharded(cfg);
  ASSERT_TRUE(sharded.WaitForAllLeaders());
  sharded.sim().RunUntil(sharded.sim().Now() + Millis(10));

  obs::MetricsRegistry metrics;
  sharded.ExportMetrics(&metrics);
  EXPECT_FALSE(metrics.empty());

  std::ostringstream json;
  metrics.DumpJson(json);
  const std::string dump = json.str();
  // Every group's counters live under its own prefix; the shard control
  // plane under "shard/".
  EXPECT_NE(dump.find("shard0."), std::string::npos);
  EXPECT_NE(dump.find("shard1."), std::string::npos);
  EXPECT_NE(dump.find("shard/epoch"), std::string::npos);
  EXPECT_NE(dump.find("shard/moves_completed"), std::string::npos);
  EXPECT_EQ(metrics.CounterValue("shard/moves_completed"), 0u);
  EXPECT_EQ(dump.find("shard2."), std::string::npos);  // only 2 groups exist
}

}  // namespace
}  // namespace hovercraft
