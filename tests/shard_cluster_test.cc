// Integration tests for the multi-group ShardedCluster (src/shard): N
// HovercRaft groups over one fabric, keyspace scale-out, a live range move
// under load with exactly-once preserved, and metrics namespacing.
#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/app/kvstore/command.h"
#include "src/app/kvstore/service.h"
#include "src/app/synthetic.h"
#include "src/chaos/kv_workload.h"
#include "src/common/buffer.h"
#include "src/loadgen/client.h"
#include "src/loadgen/workload.h"
#include "src/obs/metrics.h"
#include "src/r2p2/shard.h"
#include "src/shard/sharded_cluster.h"

namespace hovercraft {
namespace {

ShardedClusterConfig BaseConfig(int32_t groups) {
  ShardedClusterConfig cfg;
  cfg.groups = groups;
  cfg.nodes_per_group = 3;
  cfg.seed = 11;
  return cfg;
}

// Bare client: sends hand-built requests (kv commands, raw shard-control
// ops) straight at a group's admission ingress and records replies by seq.
// Used to plant a specific key and to inject the stale parked-copy control
// entries a re-drain after a leader change would produce.
class InjectorHost final : public Host {
 public:
  InjectorHost(Simulator* sim, const CostModel& costs) : Host(sim, costs, Kind::kServer) {}

  void HandleMessage(HostId /*src*/, const MessagePtr& msg) override {
    if (const auto* resp = dynamic_cast<const RpcResponse*>(msg.get())) {
      replies_[resp->rid().seq] = resp->body();
    }
  }

  uint64_t SendRequest(Addr dst, Body body, uint32_t slot) {
    const uint64_t seq = next_seq_++;
    Send(dst, std::make_shared<RpcRequest>(RequestId{id(), seq}, R2p2Policy::kReplicatedReq,
                                           std::move(body), /*attempt=*/1,
                                           /*ack_watermark=*/0, slot));
    return seq;
  }

  bool HasReply(uint64_t seq) const { return replies_.count(seq) != 0; }
  const Body& ReplyOf(uint64_t seq) const { return replies_.at(seq); }

 private:
  uint64_t next_seq_ = 1;
  std::map<uint64_t, Body> replies_;
};

bool StepUntil(ShardedCluster& sharded, TimeNs deadline, const std::function<bool()>& done) {
  while (!done() && sharded.sim().Now() < deadline) {
    if (!sharded.sim().Step()) {
      break;
    }
  }
  return done();
}

std::string KeyInRange(uint32_t lo, uint32_t hi) {
  for (int i = 0;; ++i) {
    std::string key = "k" + std::to_string(i);
    const uint32_t slot = ShardSlotOf(key);
    if (slot >= lo && slot <= hi) {
      return key;
    }
  }
}

Body SetCmd(const std::string& key, const std::string& value) {
  KvCommand cmd;
  cmd.op = KvOpcode::kSet;
  cmd.key = key;
  cmd.value = value;
  return EncodeKvCommand(cmd);
}

Body GetCmd(const std::string& key) {
  KvCommand cmd;
  cmd.op = KvOpcode::kGet;
  cmd.key = key;
  return EncodeKvCommand(cmd);
}

std::string ValueOf(const Body& reply) {
  Result<KvReply> decoded = DecodeKvReply(reply);
  if (!decoded.ok() || decoded.value().status != KvReplyStatus::kOk ||
      decoded.value().values.empty()) {
    return "";
  }
  return decoded.value().values[0];
}

// The install payload an abandoned coordinator retry would carry: an empty
// session range plus a capture of `key` bound to `value`.
Body StaleInstallPayload(const std::string& key, const std::string& value, uint32_t lo,
                         uint32_t hi) {
  KvService scratch;
  KvCommand set;
  set.op = KvOpcode::kSet;
  set.key = key;
  set.value = value;
  scratch.Apply(set);
  const Body app = scratch.CaptureRange(lo, hi);
  BufferWriter w;
  w.PutU32(0);  // no cached session replies in the stale capture
  w.PutBytes(*app);
  return MakeBody(w.TakeBytes());
}

uint64_t SumCtlStale(Cluster& cluster) {
  uint64_t total = 0;
  for (NodeId n = 0; n < cluster.total_node_count(); ++n) {
    total += cluster.server(n).server_stats().shard_ctl_stale;
  }
  return total;
}

void ExpectGroupConverged(Cluster& cluster, int32_t g) {
  const uint64_t digest0 = cluster.server(0).app().Digest();
  for (NodeId n = 1; n < cluster.total_node_count(); ++n) {
    EXPECT_EQ(cluster.server(n).app().Digest(), digest0) << "group " << g << " node " << n;
  }
}

TEST(ShardedClusterTest, ScaleOutSpreadsLoadAcrossGroups) {
  ShardedClusterConfig cfg = BaseConfig(4);
  cfg.app_factory = []() { return std::make_unique<SyntheticService>(); };
  ShardedCluster sharded(cfg);
  ASSERT_TRUE(sharded.WaitForAllLeaders());

  // One client spraying the whole keyspace through the shard router.
  SyntheticWorkloadConfig wc;
  wc.random_shard_slot = true;  // uniform over all 64 slots
  auto client = std::make_unique<ClientHost>(
      &sharded.sim(), sharded.config().costs,
      [&sharded]() { return sharded.group(GroupId{0}).ClientTarget(); },
      std::make_unique<SyntheticWorkload>(wc), 80'000, 77);
  client->EnableSharding([&sharded](uint32_t slot) { return sharded.RouteOf(slot); });
  sharded.network().Attach(client.get());

  const TimeNs t0 = sharded.sim().Now();
  client->StartLoad(t0, t0 + Millis(20));
  sharded.sim().RunUntil(t0 + Millis(40));

  EXPECT_GT(client->total_sent(), 500u);
  EXPECT_EQ(client->total_completed(), client->total_sent());
  // A stable map never redirects.
  EXPECT_EQ(client->total_redirects(), 0u);
  EXPECT_EQ(sharded.TotalWrongShardNacks(), 0u);
  // Every group took a meaningful share (uniform slots, 16 slots each).
  for (int32_t g = 0; g < 4; ++g) {
    EXPECT_GT(sharded.group(GroupId{g}).TotalExecuted(), 0u) << "group " << g;
  }
  EXPECT_TRUE(sharded.AllWatchdogsOk()) << sharded.WatchdogSummary();
}

TEST(ShardedClusterTest, LiveMoveUnderLoadKeepsExactlyOnce) {
  ShardedClusterConfig cfg = BaseConfig(2);
  cfg.app_factory = []() { return std::make_unique<KvService>(); };
  ShardedCluster sharded(cfg);
  ASSERT_TRUE(sharded.WaitForAllLeaders());

  std::vector<std::unique_ptr<ClientHost>> clients;
  for (int i = 0; i < 2; ++i) {
    ChaosKvWorkloadConfig wc;
    wc.keys = 12;  // hot keys spread over both groups' ranges
    wc.value_tag = static_cast<uint64_t>(i);
    auto client = std::make_unique<ClientHost>(
        &sharded.sim(), sharded.config().costs,
        [&sharded]() { return sharded.group(GroupId{0}).ClientTarget(); },
        std::make_unique<ChaosKvWorkload>(wc), 30'000, 900 + static_cast<uint64_t>(i));
    // One-lookup-behind map cache: each resolve returns the previously
    // fetched route and refreshes the cache, so the first send after a
    // cutover deterministically hits the old owner and gets redirected.
    auto cache = std::make_shared<std::array<ClientHost::ShardRoute, kShardSlots>>();
    client->EnableSharding([&sharded, cache](uint32_t slot) {
      ClientHost::ShardRoute stale = (*cache)[slot];
      (*cache)[slot] = sharded.RouteOf(slot);
      return stale.epoch == 0 ? (*cache)[slot] : stale;
    });
    client->set_outstanding_limit(8, Millis(40));
    ClientHost::RetryPolicy rp;
    rp.enabled = true;
    rp.initial_backoff = Micros(300);
    rp.max_backoff = Millis(2);
    client->set_retry_policy(rp);
    sharded.network().Attach(client.get());
    clients.push_back(std::move(client));
  }

  const TimeNs t0 = sharded.sim().Now();
  const auto g0_slots = sharded.shard_map().SlotsOf(GroupId{0});
  sharded.sim().At(t0 + Millis(10), [&sharded, &g0_slots]() {
    sharded.StartMove(g0_slots.front(), g0_slots.back(), GroupId{1});
  });
  for (auto& client : clients) {
    client->StartLoad(t0, t0 + Millis(30));
  }
  sharded.sim().RunUntil(t0 + Millis(80));

  // The move completed and flipped ownership.
  EXPECT_EQ(sharded.coordinator().stats().moves_started, 1u);
  EXPECT_EQ(sharded.coordinator().stats().moves_completed, 1u);
  EXPECT_EQ(sharded.coordinator().stats().moves_failed, 0u);
  EXPECT_EQ(sharded.shard_map().epoch(), 2u);
  for (uint32_t slot : g0_slots) {
    EXPECT_EQ(sharded.shard_map().OwnerOf(slot), GroupId{1});
  }
  EXPECT_GT(sharded.coordinator().stats().capture_bytes, 0u);

  // Traffic into the moved range was redirected, never lost or doubled.
  uint64_t completed = 0, sent = 0, abandoned = 0;
  for (const auto& client : clients) {
    completed += client->total_completed();
    sent += client->total_sent();
    abandoned += client->total_abandoned();
  }
  EXPECT_GT(sent, 200u);
  EXPECT_EQ(completed, sent);
  EXPECT_EQ(abandoned, 0u);
  EXPECT_GT(sharded.TotalWrongShardNacks(), 0u);
  uint64_t redirects = 0;
  for (const auto& client : clients) {
    redirects += client->total_redirects();
  }
  EXPECT_GT(redirects, 0u);
  EXPECT_EQ(sharded.TotalDoubleApplies(), 0u);
  EXPECT_TRUE(sharded.AllWatchdogsOk()) << sharded.WatchdogSummary();

  // Replicas inside each group agree on the post-move state.
  for (int32_t g = 0; g < 2; ++g) {
    Cluster& cluster = sharded.group(GroupId{g});
    const uint64_t digest0 = cluster.server(0).app().Digest();
    for (NodeId n = 1; n < cluster.total_node_count(); ++n) {
      EXPECT_EQ(cluster.server(n).app().Digest(), digest0) << "group " << g << " node " << n;
    }
  }
}

TEST(ShardedClusterTest, MoveBackRestoresOriginalOwnership) {
  ShardedClusterConfig cfg = BaseConfig(2);
  cfg.app_factory = []() { return std::make_unique<KvService>(); };
  ShardedCluster sharded(cfg);
  ASSERT_TRUE(sharded.WaitForAllLeaders());

  const auto g0_slots = sharded.shard_map().SlotsOf(GroupId{0});
  sharded.StartMove(g0_slots.front(), g0_slots.back(), GroupId{1});
  sharded.sim().RunUntil(sharded.sim().Now() + Millis(20));
  ASSERT_EQ(sharded.coordinator().stats().moves_completed, 1u);

  sharded.StartMove(g0_slots.front(), g0_slots.back(), GroupId{0});
  sharded.sim().RunUntil(sharded.sim().Now() + Millis(20));
  EXPECT_EQ(sharded.coordinator().stats().moves_completed, 2u);
  EXPECT_EQ(sharded.shard_map().epoch(), 3u);
  for (uint32_t slot : g0_slots) {
    EXPECT_EQ(sharded.shard_map().OwnerOf(slot), GroupId{0});
  }
  EXPECT_TRUE(sharded.coordinator().idle());
}

TEST(ShardedClusterTest, MoveToSelfIsRejected) {
  ShardedClusterConfig cfg = BaseConfig(2);
  cfg.app_factory = []() { return std::make_unique<KvService>(); };
  ShardedCluster sharded(cfg);
  ASSERT_TRUE(sharded.WaitForAllLeaders());

  sharded.StartMove(0, 3, GroupId{0});  // slots 0..3 already belong to group 0
  sharded.sim().RunUntil(sharded.sim().Now() + Millis(5));
  EXPECT_EQ(sharded.coordinator().stats().moves_rejected, 1u);
  EXPECT_EQ(sharded.coordinator().stats().moves_started, 0u);
  EXPECT_EQ(sharded.shard_map().epoch(), 1u);
}

TEST(ShardedClusterTest, MetricsNamespacesDoNotAlias) {
  ShardedClusterConfig cfg = BaseConfig(2);
  cfg.app_factory = []() { return std::make_unique<SyntheticService>(); };
  ShardedCluster sharded(cfg);
  ASSERT_TRUE(sharded.WaitForAllLeaders());
  sharded.sim().RunUntil(sharded.sim().Now() + Millis(10));

  obs::MetricsRegistry metrics;
  sharded.ExportMetrics(&metrics);
  EXPECT_FALSE(metrics.empty());

  std::ostringstream json;
  metrics.DumpJson(json);
  const std::string dump = json.str();
  // Every group's counters live under its own prefix; the shard control
  // plane under "shard/".
  EXPECT_NE(dump.find("shard0."), std::string::npos);
  EXPECT_NE(dump.find("shard1."), std::string::npos);
  EXPECT_NE(dump.find("shard/epoch"), std::string::npos);
  EXPECT_NE(dump.find("shard/moves_completed"), std::string::npos);
  EXPECT_EQ(metrics.CounterValue("shard/moves_completed"), 0u);
  EXPECT_EQ(dump.find("shard2."), std::string::npos);  // only 2 groups exist
}

// REVIEW fence regression: an abandoned install retry from a completed move,
// re-drained into the destination's log after the cutover (simulated here by
// injecting it directly), must not roll the range back below post-cutover
// writes.
TEST(ShardedClusterTest, StaleInstallAfterCutoverIsFenced) {
  ShardedClusterConfig cfg = BaseConfig(2);
  cfg.app_factory = []() { return std::make_unique<KvService>(); };
  ShardedCluster sharded(cfg);
  ASSERT_TRUE(sharded.WaitForAllLeaders());
  InjectorHost inj(&sharded.sim(), sharded.config().costs);
  sharded.network().Attach(&inj);

  const auto g0_slots = sharded.shard_map().SlotsOf(GroupId{0});
  const uint32_t lo = g0_slots.front(), hi = g0_slots.back();
  const std::string key = KeyInRange(lo, hi);
  const uint32_t slot = ShardSlotOf(key);

  // v1 at the source, then move the range, then v2 at the destination.
  uint64_t seq = inj.SendRequest(sharded.group(GroupId{0}).ClientTarget(), SetCmd(key, "v1"),
                                 slot);
  ASSERT_TRUE(StepUntil(sharded, sharded.sim().Now() + Millis(20),
                        [&]() { return inj.HasReply(seq); }));
  sharded.StartMove(lo, hi, GroupId{1});
  ASSERT_TRUE(StepUntil(sharded, sharded.sim().Now() + Millis(40), [&]() {
    return sharded.coordinator().stats().moves_completed == 1;
  }));
  seq = inj.SendRequest(sharded.group(GroupId{1}).ClientTarget(), SetCmd(key, "v2"), slot);
  ASSERT_TRUE(StepUntil(sharded, sharded.sim().Now() + Millis(20),
                        [&]() { return inj.HasReply(seq); }));

  // The stale parked copy: move 1's install under a fresh rid, carrying a
  // capture that predates v2. Unfenced, applying it would resurrect "stale".
  ShardOp parked;
  parked.kind = ShardOpKind::kInstall;
  parked.move_id = 1;
  parked.lo = lo;
  parked.hi = hi;
  parked.payload = StaleInstallPayload(key, "stale", lo, hi);
  seq = inj.SendRequest(sharded.group(GroupId{1}).ClientTarget(), EncodeShardOp(parked),
                        kShardCtlSlot);
  ASSERT_TRUE(StepUntil(sharded, sharded.sim().Now() + Millis(20),
                        [&]() { return inj.HasReply(seq); }));

  EXPECT_GT(SumCtlStale(sharded.group(GroupId{1})), 0u);
  seq = inj.SendRequest(sharded.group(GroupId{1}).ClientTarget(), GetCmd(key), slot);
  ASSERT_TRUE(StepUntil(sharded, sharded.sim().Now() + Millis(20),
                        [&]() { return inj.HasReply(seq); }));
  EXPECT_EQ(ValueOf(inj.ReplyOf(seq)), "v2");
  sharded.sim().RunUntil(sharded.sim().Now() + Millis(5));
  for (int32_t g = 0; g < 2; ++g) {
    ExpectGroupConverged(sharded.group(GroupId{g}), g);
  }
  EXPECT_TRUE(sharded.AllWatchdogsOk()) << sharded.WatchdogSummary();
}

// REVIEW fence regression: after a there-and-back move, move 1's parked GC
// re-drained at the original owner must not delete the keys it owns again.
TEST(ShardedClusterTest, StaleGcAfterMoveBackIsFenced) {
  ShardedClusterConfig cfg = BaseConfig(2);
  cfg.app_factory = []() { return std::make_unique<KvService>(); };
  ShardedCluster sharded(cfg);
  ASSERT_TRUE(sharded.WaitForAllLeaders());
  InjectorHost inj(&sharded.sim(), sharded.config().costs);
  sharded.network().Attach(&inj);

  const auto g0_slots = sharded.shard_map().SlotsOf(GroupId{0});
  const uint32_t lo = g0_slots.front(), hi = g0_slots.back();
  const std::string key = KeyInRange(lo, hi);
  const uint32_t slot = ShardSlotOf(key);

  sharded.StartMove(lo, hi, GroupId{1});
  sharded.StartMove(lo, hi, GroupId{0});
  ASSERT_TRUE(StepUntil(sharded, sharded.sim().Now() + Millis(60), [&]() {
    return sharded.coordinator().stats().moves_completed == 2;
  }));
  uint64_t seq = inj.SendRequest(sharded.group(GroupId{0}).ClientTarget(), SetCmd(key, "v2"),
                                 slot);
  ASSERT_TRUE(StepUntil(sharded, sharded.sim().Now() + Millis(20),
                        [&]() { return inj.HasReply(seq); }));

  // Move 1's GC (source = group 0) under a fresh rid, arbitrarily late.
  ShardOp parked;
  parked.kind = ShardOpKind::kGc;
  parked.move_id = 1;
  parked.lo = lo;
  parked.hi = hi;
  seq = inj.SendRequest(sharded.group(GroupId{0}).ClientTarget(), EncodeShardOp(parked),
                        kShardCtlSlot);
  ASSERT_TRUE(StepUntil(sharded, sharded.sim().Now() + Millis(20),
                        [&]() { return inj.HasReply(seq); }));

  EXPECT_GT(SumCtlStale(sharded.group(GroupId{0})), 0u);
  // The key survives and the range still serves at group 0.
  seq = inj.SendRequest(sharded.group(GroupId{0}).ClientTarget(), GetCmd(key), slot);
  ASSERT_TRUE(StepUntil(sharded, sharded.sim().Now() + Millis(20),
                        [&]() { return inj.HasReply(seq); }));
  EXPECT_EQ(ValueOf(inj.ReplyOf(seq)), "v2");
  sharded.sim().RunUntil(sharded.sim().Now() + Millis(5));
  for (int32_t g = 0; g < 2; ++g) {
    ExpectGroupConverged(sharded.group(GroupId{g}), g);
  }
  EXPECT_TRUE(sharded.AllWatchdogsOk()) << sharded.WatchdogSummary();
}

// REVIEW abort regression: a move whose destination is down exhausts its
// retry budget, runs the replicated abort protocol once the destination
// heals, and leaves the source serving the range again — not frozen forever.
TEST(ShardedClusterTest, FailedMoveAbortsAndSourceServesAgain) {
  ShardedClusterConfig cfg = BaseConfig(2);
  cfg.app_factory = []() { return std::make_unique<KvService>(); };
  ShardedCluster sharded(cfg);
  ASSERT_TRUE(sharded.WaitForAllLeaders());
  sharded.coordinator().set_retry_budget(4);
  InjectorHost inj(&sharded.sim(), sharded.config().costs);
  sharded.network().Attach(&inj);

  const auto g0_slots = sharded.shard_map().SlotsOf(GroupId{0});
  const uint32_t lo = g0_slots.front(), hi = g0_slots.back();
  const std::string key = KeyInRange(lo, hi);
  const uint32_t slot = ShardSlotOf(key);

  uint64_t seq = inj.SendRequest(sharded.group(GroupId{0}).ClientTarget(), SetCmd(key, "v1"),
                                 slot);
  ASSERT_TRUE(StepUntil(sharded, sharded.sim().Now() + Millis(20),
                        [&]() { return inj.HasReply(seq); }));

  // Destination down: the freeze commits at the live source, the install
  // burns the budget, the move fails into the abort protocol and parks there
  // (aborts retry without a budget).
  for (NodeId n = 0; n < sharded.group(GroupId{1}).total_node_count(); ++n) {
    sharded.group(GroupId{1}).KillNode(n);
  }
  sharded.StartMove(lo, hi, GroupId{1});
  ASSERT_TRUE(StepUntil(sharded, sharded.sim().Now() + Millis(100), [&]() {
    return sharded.coordinator().stats().moves_failed == 1;
  }));
  EXPECT_TRUE(sharded.shard_map().IsFrozen(lo));  // abort not yet committed

  for (NodeId n = 0; n < sharded.group(GroupId{1}).total_node_count(); ++n) {
    sharded.group(GroupId{1}).RestartNode(n);
  }
  ASSERT_TRUE(StepUntil(sharded, sharded.sim().Now() + Millis(500), [&]() {
    return sharded.coordinator().stats().moves_aborted == 1;
  }));

  // Ownership never moved; the freeze is undone everywhere; the epoch bump
  // tells redirected clients to refresh.
  EXPECT_TRUE(sharded.coordinator().idle());
  EXPECT_EQ(sharded.coordinator().stats().moves_completed, 0u);
  EXPECT_EQ(sharded.shard_map().epoch(), 2u);
  for (uint32_t s : g0_slots) {
    EXPECT_EQ(sharded.shard_map().OwnerOf(s), GroupId{0});
    EXPECT_FALSE(sharded.shard_map().IsFrozen(s));
  }
  uint64_t unfreezes = 0;
  for (NodeId n = 0; n < sharded.group(GroupId{0}).total_node_count(); ++n) {
    unfreezes += sharded.group(GroupId{0}).server(n).server_stats().shard_unfreezes;
  }
  EXPECT_GT(unfreezes, 0u);
  uint64_t uninstalls = 0;
  for (NodeId n = 0; n < sharded.group(GroupId{1}).total_node_count(); ++n) {
    uninstalls += sharded.group(GroupId{1}).server(n).server_stats().shard_uninstalls;
  }
  EXPECT_GT(uninstalls, 0u);

  // The range is writable at the source again.
  seq = inj.SendRequest(sharded.group(GroupId{0}).ClientTarget(), SetCmd(key, "v2"), slot);
  ASSERT_TRUE(StepUntil(sharded, sharded.sim().Now() + Millis(40),
                        [&]() { return inj.HasReply(seq); }));
  seq = inj.SendRequest(sharded.group(GroupId{0}).ClientTarget(), GetCmd(key), slot);
  ASSERT_TRUE(StepUntil(sharded, sharded.sim().Now() + Millis(40),
                        [&]() { return inj.HasReply(seq); }));
  EXPECT_EQ(ValueOf(inj.ReplyOf(seq)), "v2");
  EXPECT_EQ(sharded.TotalDoubleApplies(), 0u);
  EXPECT_TRUE(sharded.AllWatchdogsOk()) << sharded.WatchdogSummary();
}

}  // namespace
}  // namespace hovercraft
