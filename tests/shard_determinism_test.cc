// The sharding determinism contract (src/shard/sharded_cluster.h): group 0's
// execution — its flight-recorder event stream, state-machine digest and op
// counts — is byte-identical whether 1 or 4 groups share the fabric, as long
// as group 0's own traffic is the same. Per-group seeds derive from the group
// id alone, hosts are allocated in group order, and the fault-free fabric
// consumes no shared randomness, so adding groups must not perturb group 0.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/app/synthetic.h"
#include "src/loadgen/client.h"
#include "src/loadgen/workload.h"
#include "src/obs/flight_recorder.h"
#include "src/shard/sharded_cluster.h"

namespace hovercraft {
namespace {

struct Group0Trace {
  std::vector<std::vector<obs::FrEvent>> node_events;  // nodes 0..3 (incl. middlebox)
  uint64_t digest = 0;
  uint64_t executed = 0;
  uint64_t client_completed = 0;
  uint64_t client_sent = 0;
};

bool SameEvent(const obs::FrEvent& x, const obs::FrEvent& y) {
  return x.ts == y.ts && x.a == y.a && x.b == y.b && x.seq == y.seq && x.c == y.c &&
         x.node == y.node && x.type == y.type;
}

// Runs `groups` groups of 3 for a fixed virtual-time window; only group 0
// gets a client, pinned to slots [0, 15] (group 0's range in the 4-group
// map, a subset of its range in the 1-group map — identical either way).
Group0Trace RunOnce(int32_t groups) {
  ShardedClusterConfig cfg;
  cfg.groups = groups;
  cfg.nodes_per_group = 3;
  cfg.app_factory = []() { return std::make_unique<SyntheticService>(); };
  cfg.seed = 42;
  cfg.flight_recorder_depth = 8192;  // deep enough that nothing is evicted

  std::unique_ptr<ClientHost> client;
  cfg.per_group_hook = [&client](GroupId g, Cluster& cluster) {
    if (g.value != 0) {
      return;  // only group 0 is loaded; the other groups idle
    }
    SyntheticWorkloadConfig wc;
    wc.random_shard_slot = true;
    wc.shard_slot_lo = 0;
    wc.shard_slot_hi = 15;
    client = std::make_unique<ClientHost>(
        &cluster.sim(), cluster.config().costs,
        [&cluster]() { return cluster.ClientTarget(); },
        std::make_unique<SyntheticWorkload>(wc), /*rate_rps=*/40'000, /*seed=*/4242);
    // No moves in this test: a fixed epoch-1 route to group 0 suffices and
    // keeps the hook independent of the (not yet constructed) ShardedCluster.
    client->EnableSharding([&cluster](uint32_t) {
      ClientHost::ShardRoute route;
      route.epoch = 1;
      route.ingress = cluster.ClientTarget();
      route.retry = cluster.RetryTarget();
      return route;
    });
    cluster.network().Attach(client.get());
  };

  ShardedCluster sharded(cfg);
  // Fixed virtual-time window (not WaitForAllLeaders, whose finish time
  // depends on the group count): elections settle within ~15 ms.
  client->StartLoad(Millis(30), Millis(40));
  sharded.sim().RunUntil(Millis(60));

  Group0Trace trace;
  Cluster& g0 = sharded.group(GroupId{0});
  EXPECT_NE(g0.LeaderId(), kInvalidNode);
  for (NodeId obs = 0; obs <= cfg.nodes_per_group; ++obs) {
    trace.node_events.push_back(sharded.flight_recorder()->NodeEvents(obs));
  }
  trace.digest = g0.server(0).app().Digest();
  trace.executed = g0.TotalExecuted();
  trace.client_completed = client->total_completed();
  trace.client_sent = client->total_sent();
  EXPECT_GT(trace.client_completed, 0u);
  return trace;
}

TEST(ShardDeterminismTest, Group0TraceIdenticalWith1Or4Groups) {
  const Group0Trace solo = RunOnce(1);
  const Group0Trace four = RunOnce(4);

  EXPECT_EQ(solo.client_sent, four.client_sent);
  EXPECT_EQ(solo.client_completed, four.client_completed);
  EXPECT_EQ(solo.executed, four.executed);
  EXPECT_EQ(solo.digest, four.digest);

  ASSERT_EQ(solo.node_events.size(), four.node_events.size());
  for (size_t n = 0; n < solo.node_events.size(); ++n) {
    const auto& a = solo.node_events[n];
    const auto& b = four.node_events[n];
    ASSERT_EQ(a.size(), b.size()) << "obs node " << n;
    EXPECT_GT(a.size(), 0u) << "obs node " << n;
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_TRUE(SameEvent(a[i], b[i]))
          << "obs node " << n << " event " << i << " diverges: ts " << a[i].ts << " vs "
          << b[i].ts << ", type " << static_cast<int>(a[i].type) << " vs "
          << static_cast<int>(b[i].type);
    }
  }
}

TEST(ShardDeterminismTest, SameSeedSameGroupCountIsReproducible) {
  const Group0Trace a = RunOnce(4);
  const Group0Trace b = RunOnce(4);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.client_completed, b.client_completed);
}

}  // namespace
}  // namespace hovercraft
