// Unit tests for the epoch-versioned ShardMap (src/shard/shard_map.h).
#include "src/shard/shard_map.h"

#include <gtest/gtest.h>

namespace hovercraft {
namespace {

TEST(ShardMapTest, InitialAssignmentIsContiguousAndTotal) {
  ShardMap map(4);
  EXPECT_EQ(map.epoch(), 1u);  // starts at 1: gate return 0 always means "serves"
  for (uint32_t s = 0; s < kShardSlots; ++s) {
    EXPECT_EQ(map.OwnerOf(s).value, static_cast<int32_t>(s / 16)) << "slot " << s;
    EXPECT_FALSE(map.IsFrozen(s));
  }
  for (int32_t g = 0; g < 4; ++g) {
    const auto slots = map.SlotsOf(GroupId{g});
    ASSERT_EQ(slots.size(), 16u);
    EXPECT_EQ(slots.front(), static_cast<uint32_t>(g) * 16);
    EXPECT_EQ(slots.back(), static_cast<uint32_t>(g) * 16 + 15);
  }
}

TEST(ShardMapTest, SingleGroupOwnsEverything) {
  ShardMap map(1);
  EXPECT_EQ(map.SlotsOf(GroupId{0}).size(), kShardSlots);
  for (uint32_t s = 0; s < kShardSlots; ++s) {
    EXPECT_TRUE(map.ServesAt(GroupId{0}, s));
  }
}

TEST(ShardMapTest, ControlAndInvalidSlotsAreAlwaysServed) {
  ShardMap map(2);
  // Non-data slots are never shard-gated anywhere.
  EXPECT_TRUE(map.ServesAt(GroupId{0}, kShardCtlSlot));
  EXPECT_TRUE(map.ServesAt(GroupId{1}, kShardCtlSlot));
  EXPECT_TRUE(map.ServesAt(GroupId{0}, kNoShardSlot));
  EXPECT_TRUE(map.ServesAt(GroupId{1}, kNoShardSlot));
}

TEST(ShardMapTest, FreezeStopsServiceWithoutEpochBump) {
  ShardMap map(2);
  ASSERT_TRUE(map.ServesAt(GroupId{0}, 3));
  ASSERT_TRUE(map.BeginMove(0, 7, GroupId{1}));
  // Ownership unchanged, service suspended, epoch unchanged (the freeze is
  // reported through the gates, not the map version).
  EXPECT_EQ(map.epoch(), 1u);
  EXPECT_EQ(map.OwnerOf(3), GroupId{0});
  EXPECT_TRUE(map.IsFrozen(3));
  EXPECT_FALSE(map.ServesAt(GroupId{0}, 3));
  EXPECT_FALSE(map.ServesAt(GroupId{1}, 3));
  // Slots outside the range are untouched.
  EXPECT_TRUE(map.ServesAt(GroupId{0}, 8));
}

TEST(ShardMapTest, CommitMoveTransfersOwnershipAndBumpsEpoch) {
  ShardMap map(2);
  ASSERT_TRUE(map.BeginMove(0, 7, GroupId{1}));
  map.CommitMove(0, 7, GroupId{1});
  EXPECT_EQ(map.epoch(), 2u);
  for (uint32_t s = 0; s <= 7; ++s) {
    EXPECT_EQ(map.OwnerOf(s), GroupId{1});
    EXPECT_FALSE(map.IsFrozen(s));
    EXPECT_TRUE(map.ServesAt(GroupId{1}, s));
    EXPECT_FALSE(map.ServesAt(GroupId{0}, s));
  }
  // The rest of group 0's range is unaffected.
  for (uint32_t s = 8; s < 32; ++s) {
    EXPECT_EQ(map.OwnerOf(s), GroupId{0});
  }
}

TEST(ShardMapTest, AbortMoveRestoresServiceAndBumpsEpoch) {
  ShardMap map(2);
  ASSERT_TRUE(map.BeginMove(4, 9, GroupId{1}));
  map.AbortMove(4, 9);
  EXPECT_EQ(map.epoch(), 2u);  // clients that saw redirects must refresh
  for (uint32_t s = 4; s <= 9; ++s) {
    EXPECT_EQ(map.OwnerOf(s), GroupId{0});
    EXPECT_TRUE(map.ServesAt(GroupId{0}, s));
  }
}

TEST(ShardMapTest, BeginMoveRejectsBadRanges) {
  ShardMap map(2);
  EXPECT_FALSE(map.BeginMove(7, 3, GroupId{1}));             // inverted
  EXPECT_FALSE(map.BeginMove(0, kShardSlots, GroupId{1}));   // out of range
  EXPECT_FALSE(map.BeginMove(0, 7, GroupId{5}));             // no such group
  EXPECT_FALSE(map.BeginMove(0, 7, GroupId{0}));             // dest == source
  EXPECT_FALSE(map.BeginMove(30, 34, GroupId{1}));           // spans two owners
  ASSERT_TRUE(map.BeginMove(0, 7, GroupId{1}));
  EXPECT_FALSE(map.BeginMove(4, 11, GroupId{1}));            // overlaps a frozen slot
  EXPECT_EQ(map.epoch(), 1u);                                // rejections change nothing
}

TEST(ShardMapTest, MoveBackAfterCommit) {
  ShardMap map(2);
  ASSERT_TRUE(map.BeginMove(0, 31, GroupId{1}));
  map.CommitMove(0, 31, GroupId{1});
  EXPECT_TRUE(map.SlotsOf(GroupId{0}).empty());
  ASSERT_TRUE(map.BeginMove(0, 31, GroupId{0}));
  map.CommitMove(0, 31, GroupId{0});
  EXPECT_EQ(map.epoch(), 3u);
  EXPECT_EQ(map.SlotsOf(GroupId{0}).size(), 32u);
}

TEST(ShardOpCodecTest, RoundTripsMoveIdAndAbortKinds) {
  for (ShardOpKind kind : {ShardOpKind::kFreeze, ShardOpKind::kInstall, ShardOpKind::kGc,
                           ShardOpKind::kUnfreeze, ShardOpKind::kUninstall}) {
    ShardOp op;
    op.kind = kind;
    op.move_id = 42;
    op.lo = 3;
    op.hi = 9;
    if (kind == ShardOpKind::kInstall) {
      op.payload = MakeBody(std::vector<uint8_t>{1, 2, 3});
    }
    ShardOp out;
    ASSERT_TRUE(DecodeShardOp(EncodeShardOp(op), &out).ok());
    EXPECT_EQ(out.kind, kind);
    EXPECT_EQ(out.move_id, 42u);
    EXPECT_EQ(out.lo, 3u);
    EXPECT_EQ(out.hi, 9u);
    EXPECT_EQ(BodySize(out.payload), BodySize(op.payload));
  }
}

TEST(ShardOpCodecTest, CtlKeyOrdersMoveStepsStrictly) {
  // Within a move: freeze < install < gc < unfreeze == uninstall; every op of
  // move m sorts below every op of move m+1.
  const uint64_t f1 = ShardCtlKeyOf(1, ShardOpKind::kFreeze);
  const uint64_t i1 = ShardCtlKeyOf(1, ShardOpKind::kInstall);
  const uint64_t g1 = ShardCtlKeyOf(1, ShardOpKind::kGc);
  const uint64_t u1 = ShardCtlKeyOf(1, ShardOpKind::kUnfreeze);
  EXPECT_LT(f1, i1);
  EXPECT_LT(i1, g1);
  EXPECT_LT(g1, u1);
  EXPECT_EQ(u1, ShardCtlKeyOf(1, ShardOpKind::kUninstall));
  EXPECT_LT(u1, ShardCtlKeyOf(2, ShardOpKind::kFreeze));
}

TEST(ShardServeStateTest, CtlWatermarkFencesStaleKeys) {
  ShardServeState state;
  state.sharded = true;
  EXPECT_TRUE(state.AdvanceCtlWatermark(ShardCtlKeyOf(1, ShardOpKind::kFreeze)));
  EXPECT_TRUE(state.AdvanceCtlWatermark(ShardCtlKeyOf(1, ShardOpKind::kGc)));
  // A re-drained duplicate of either step, or of any earlier move, fences.
  EXPECT_FALSE(state.AdvanceCtlWatermark(ShardCtlKeyOf(1, ShardOpKind::kGc)));
  EXPECT_FALSE(state.AdvanceCtlWatermark(ShardCtlKeyOf(1, ShardOpKind::kFreeze)));
  // The next move's ops pass.
  EXPECT_TRUE(state.AdvanceCtlWatermark(ShardCtlKeyOf(2, ShardOpKind::kInstall)));
  EXPECT_EQ(state.ctl_watermark(), ShardCtlKeyOf(2, ShardOpKind::kInstall));
}

TEST(ShardServeStateTest, UnfreezeRestoresServiceButNeverOwnership) {
  ShardServeState state;
  state.sharded = true;
  state.Drop(10, 12);    // never owned here
  state.Freeze(0, 4);    // owned, mid-move
  EXPECT_FALSE(state.Serves(2));
  state.Unfreeze(0, 12);  // abort: unfreeze the whole range
  EXPECT_TRUE(state.Serves(2));
  EXPECT_FALSE(state.Serves(11));  // dropped slots stay dropped
}

TEST(ShardServeStateTest, SerializeRoundTripsCtlWatermark) {
  ShardServeState state;
  state.sharded = true;
  state.Freeze(1, 2);
  state.Drop(40, 41);
  ASSERT_TRUE(state.AdvanceCtlWatermark(ShardCtlKeyOf(7, ShardOpKind::kGc)));
  BufferWriter w;
  state.Serialize(&w);
  const std::vector<uint8_t> bytes = w.TakeBytes();
  BufferReader r(bytes);
  ShardServeState restored;
  restored.sharded = true;
  ASSERT_TRUE(restored.Restore(&r).ok());
  EXPECT_EQ(restored.ctl_watermark(), ShardCtlKeyOf(7, ShardOpKind::kGc));
  EXPECT_EQ(restored.frozen(), state.frozen());
  EXPECT_EQ(restored.dropped(), state.dropped());
  // A stale key from an earlier move is still fenced after the round trip.
  EXPECT_FALSE(restored.AdvanceCtlWatermark(ShardCtlKeyOf(7, ShardOpKind::kFreeze)));
}

TEST(ShardMapTest, ShardSlotOfIsStableAndInRange) {
  // The client, middlebox and server all hash keys independently; the slot
  // function must be pure and bounded.
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const uint32_t slot = ShardSlotOf(key);
    EXPECT_LT(slot, kShardSlots);
    EXPECT_EQ(slot, ShardSlotOf(key));
  }
}

}  // namespace
}  // namespace hovercraft
