// Wrong-shard redirect handling at the R2P2 layer (docs/sharding.md).
//
// Rig: two "groups", each one JBSQ router in front of a small unreplicated
// fleet, sharing one fabric. The authoritative slot owner lives in a test
// variable wired into both routers' shard gates; the client's route function
// models a cached shard map that refreshes itself on every lookup. The tests
// drive the client through the stale-map protocol: NACK(wrong_shard) from the
// old owner, map refresh, resend at the new owner — including the map moving
// a second time mid-retry and the immediate-redirect cap falling back to
// retry-timer pacing.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/app/synthetic.h"
#include "src/core/server.h"
#include "src/loadgen/client.h"
#include "src/loadgen/workload.h"
#include "src/net/network.h"
#include "src/r2p2/router.h"

namespace hovercraft {
namespace {

constexpr uint32_t kSlot = 5;

// Two router-fronted server groups on one fabric.
struct TwoGroupRig {
  explicit TwoGroupRig(uint64_t seed = 1) : net(&sim, costs, seed) {
    for (int32_t g = 0; g < 2; ++g) {
      ServerConfig sc;
      sc.mode = ClusterMode::kUnreplicated;
      std::vector<HostId> hosts;
      for (int32_t i = 0; i < 2; ++i) {
        fleets[g].push_back(std::make_unique<ReplicatedServer>(
            &sim, costs, sc, std::make_unique<SyntheticService>(), seed + 100 + g * 10 + i));
        hosts.push_back(net.Attach(fleets[g].back().get()));
      }
      routers[g] = std::make_unique<R2p2Router>(&sim, costs, hosts, RouterPolicy::kJbsq, 8,
                                                seed ^ (0xF00u + g));
      const HostId router_host = net.Attach(routers[g].get());
      for (auto& server : fleets[g]) {
        server->Wire({}, kInvalidHost, router_host);
        server->Start();
      }
    }
    // Both gates consult the same authoritative owner; a non-owner NACKs
    // with the current epoch.
    for (int32_t g = 0; g < 2; ++g) {
      routers[g]->set_shard_gate([this, g](uint32_t /*slot*/) -> uint64_t {
        return owner == g ? 0 : epoch;
      });
    }
  }

  // A client whose every op targets kSlot; `route` models its map cache.
  std::unique_ptr<ClientHost> MakeClient(ClientHost::ShardRouteFn route, double rate,
                                         uint64_t seed) {
    SyntheticWorkloadConfig wc;
    wc.service_time = std::make_shared<FixedDistribution>(Micros(2));
    wc.random_shard_slot = true;
    wc.shard_slot_lo = kSlot;
    wc.shard_slot_hi = kSlot;
    auto client = std::make_unique<ClientHost>(
        &sim, costs, [this]() { return routers[0]->id(); },
        std::make_unique<SyntheticWorkload>(wc), rate, seed);
    client->EnableSharding(std::move(route));
    net.Attach(client.get());
    return client;
  }

  ClientHost::ShardRoute RouteTo(int32_t g) const {
    ClientHost::ShardRoute r;
    r.epoch = epoch;
    r.ingress = routers[g]->id();
    r.retry = routers[g]->id();
    return r;
  }

  Simulator sim;
  CostModel costs;
  Network net;
  std::vector<std::unique_ptr<ReplicatedServer>> fleets[2];
  std::unique_ptr<R2p2Router> routers[2];
  int32_t owner = 0;   // authoritative slot owner (both gates read this)
  uint64_t epoch = 2;  // what a NACK advertises
};

TEST(ShardRouterTest, StaleMapRedirectsOnceThenCompletes) {
  TwoGroupRig rig;
  rig.owner = 1;  // the range moved to group 1...
  int32_t view = 0;  // ...but the client's cached map still says group 0
  auto client = rig.MakeClient(
      [&rig, &view](uint32_t) {
        const int32_t stale = view;
        view = rig.owner;  // every lookup refreshes the cache
        return rig.RouteTo(stale);
      },
      50'000, 7);
  client->StartLoad(0, Millis(2));
  rig.sim.RunUntil(Millis(20));

  EXPECT_GT(client->total_sent(), 0u);
  EXPECT_EQ(client->total_completed(), client->total_sent());
  // Exactly the first send hits the stale owner; everything after the
  // refresh goes straight to group 1.
  EXPECT_EQ(client->total_redirects(), 1u);
  EXPECT_EQ(rig.routers[0]->router_stats().wrong_shard_nacked, 1u);
  EXPECT_EQ(rig.routers[1]->router_stats().wrong_shard_nacked, 0u);
  uint64_t group1_ops = 0;
  for (const auto& server : rig.fleets[1]) {
    group1_ops += server->server_stats().ops_executed;
  }
  EXPECT_EQ(group1_ops, client->total_completed());
}

TEST(ShardRouterTest, MapMovesAgainMidRetry) {
  TwoGroupRig rig;
  rig.owner = 1;
  // Lookup 1: stale view of group 0. Lookup 2 (the redirect refresh):
  // current owner (group 1), but the range immediately moves back — so the
  // resend is stale again, group 1 NACKs, and lookup 3 lands on group 0.
  int32_t lookups = 0;
  auto client = rig.MakeClient(
      [&rig, &lookups](uint32_t) {
        ++lookups;
        if (lookups == 1) {
          return rig.RouteTo(0);  // stale cache
        }
        const int32_t target = rig.owner;
        if (lookups == 2) {
          rig.owner = 0;  // second move commits while the resend is in flight
          ++rig.epoch;
        }
        return rig.RouteTo(target);
      },
      5'000, 7);
  // Arrivals are sparse (≈200 µs apart) next to the µs-scale redirect chain,
  // so the first op's two-NACK chase resolves before the second op is sent;
  // every later lookup sees the settled owner and completes directly.
  client->StartLoad(0, Millis(3));
  rig.sim.RunUntil(Millis(20));

  ASSERT_GE(client->total_sent(), 1u);
  EXPECT_EQ(client->total_completed(), client->total_sent());
  EXPECT_EQ(client->total_redirects(), 2u);
  EXPECT_EQ(rig.routers[0]->router_stats().wrong_shard_nacked, 1u);
  EXPECT_EQ(rig.routers[1]->router_stats().wrong_shard_nacked, 1u);
}

TEST(ShardRouterTest, RedirectCapFallsBackToRetryPacing) {
  TwoGroupRig rig;
  rig.owner = 1;  // nothing the client can reach serves the slot...
  auto client = rig.MakeClient(
      [&rig](uint32_t) { return rig.RouteTo(0); },  // ...its map is pinned stale
      20'000, 7);
  ClientHost::RetryPolicy rp;
  rp.enabled = true;
  rp.initial_backoff = Micros(100);
  rp.max_backoff = Micros(400);
  client->set_retry_policy(rp);
  client->set_outstanding_limit(8, Millis(50));
  // Heal the map 5 ms in: group 0 becomes the owner, so the pinned route is
  // finally right and the next paced retry completes.
  rig.sim.At(Millis(5), [&rig]() {
    rig.owner = 0;
    ++rig.epoch;
  });
  client->StartLoad(0, Micros(400));
  rig.sim.RunUntil(Millis(40));

  ASSERT_GE(client->total_sent(), 1u);
  EXPECT_EQ(client->total_completed(), client->total_sent());
  // The burst of back-to-back redirects stops at the cap; after that only
  // the retry timer resends (each NACKed until the heal).
  EXPECT_GE(client->total_redirects(), ClientHost::kMaxImmediateRedirects);
  EXPECT_GT(client->total_retransmits(), 0u);
  EXPECT_GE(rig.routers[0]->router_stats().wrong_shard_nacked,
            static_cast<uint64_t>(ClientHost::kMaxImmediateRedirects));
  EXPECT_EQ(client->total_abandoned(), 0u);
}

// REVIEW regression: with the retry policy left disabled (the default), a
// redirected op must still be paced by a resend timer past the immediate
// cap — not hang forever with no armed timer the moment a redirect resend
// gets NACKed again.
TEST(ShardRouterTest, RedirectsWithoutRetryPolicyStillComplete) {
  TwoGroupRig rig;
  rig.owner = 1;  // pinned-stale map, exactly like the cap test...
  auto client = rig.MakeClient(
      [&rig](uint32_t) { return rig.RouteTo(0); },
      20'000, 7);
  // ...but no set_retry_policy call: redirects are the only resend path.
  client->set_outstanding_limit(8, Millis(50));
  rig.sim.At(Millis(5), [&rig]() {
    rig.owner = 0;
    ++rig.epoch;
  });
  client->StartLoad(0, Micros(400));
  rig.sim.RunUntil(Millis(40));

  ASSERT_GE(client->total_sent(), 1u);
  EXPECT_EQ(client->total_completed(), client->total_sent());
  EXPECT_GE(client->total_redirects(), ClientHost::kMaxImmediateRedirects);
  // Past the cap, the always-armed redirect timer carried the op to the heal.
  EXPECT_GT(client->total_retransmits(), 0u);
  EXPECT_EQ(client->total_abandoned(), 0u);
}

}  // namespace
}  // namespace hovercraft
