// Determinism contract tests for the timer-wheel scheduler (ISSUE 4).
//
// The wheel must execute events in exactly the order the reference
// binary-heap core (src/sim/reference_heap.h) does: strictly by time, ties
// by schedule order. These tests replay identical schedules — randomized
// self-scheduling/cancelling workloads and a hand-written golden sequence —
// through both cores and require identical (time, label) traces, then pin
// byte-identical ExportMetrics output across repeated chaos runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/chaos/runner.h"
#include "src/common/random.h"
#include "src/common/types.h"
#include "src/obs/observability.h"
#include "src/sim/reference_heap.h"
#include "src/sim/simulator.h"

namespace hovercraft {
namespace {

using Trace = std::vector<std::pair<TimeNs, int>>;

// Runs a randomized self-scheduling workload on either scheduler core and
// records the (time, label) execution order. All scheduling decisions are
// drawn from the Rng *inside executed events*, so the decision stream — and
// therefore the comparison — is only meaningful while both cores execute in
// the same order. Any divergence snowballs into a trace mismatch.
//
// Cancel targets are chosen by label from the currently-pending set, never
// from history, so both cores cancel the same logical events (the reference
// core's Cancel accepts stale ids; the wheel's does not — that seed bug is
// pinned separately in sim_test.cc).
template <typename Scheduler>
Trace RunRandomizedScript(uint64_t seed, int max_events) {
  Scheduler sched;
  Rng rng(seed);
  Trace trace;
  std::map<int, uint64_t> pending;  // label -> scheduler-specific event id
  int next_label = 0;
  int scheduled = 0;

  std::function<void(int)> on_fire = [&](int label) {
    pending.erase(label);
    trace.emplace_back(sched.Now(), label);
    // Fan out 0..3 new events across very different distances: same-tick
    // ties, near (level-0/1), mid (level-2), deep wheel (level 3), and far
    // (past the ~4.3s horizon, overflow tier). Mean fanout 1.5 keeps the
    // process supercritical (cancels eat ~0.25/event), so runs reliably hit
    // the max_events cap instead of dying out early.
    const int fanout = static_cast<int>(rng.NextBelow(4));
    for (int i = 0; i < fanout && scheduled < max_events; ++i) {
      TimeNs delta = 0;
      switch (rng.NextBelow(5)) {
        case 0: delta = 0; break;                                        // tie
        case 1: delta = static_cast<TimeNs>(rng.NextBelow(300)); break;  // near
        case 2: delta = static_cast<TimeNs>(rng.NextBelow(100'000)); break;
        case 3: delta = static_cast<TimeNs>(rng.NextBelow(60'000'000)); break;   // deep wheel
        default: delta = static_cast<TimeNs>(rng.NextBelow(6'000'000'000)); break;  // overflow tier
      }
      const int label2 = next_label++;
      ++scheduled;
      pending[label2] = sched.After(delta, [&on_fire, label2]() { on_fire(label2); });
    }
    // Occasionally cancel a pending event, chosen deterministically.
    if (!pending.empty() && rng.NextBelow(4) == 0) {
      auto it = pending.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(pending.size())));
      EXPECT_TRUE(sched.Cancel(it->second));
      trace.emplace_back(sched.Now(), -1 - it->first);  // record the cancel
      pending.erase(it);
    }
  };

  for (int i = 0; i < 16; ++i) {
    const TimeNs when = static_cast<TimeNs>(rng.NextBelow(1'000'000));
    const int label = next_label++;
    ++scheduled;
    pending[label] = sched.At(when, [&on_fire, label]() { on_fire(label); });
  }
  // Drive in deadline slices so the wheel's RunUntil clamping is exercised,
  // then drain.
  for (TimeNs until = 0; until < 200'000'000 && !pending.empty(); until += 7'777'777) {
    sched.RunUntil(until);
  }
  sched.RunToCompletion();
  return trace;
}

TEST(SimDeterminismTest, RandomizedSchedulesMatchReferenceHeap) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Trace wheel = RunRandomizedScript<Simulator>(seed, 4000);
    const Trace heap = RunRandomizedScript<ReferenceHeapScheduler>(seed, 4000);
    ASSERT_GT(wheel.size(), 100u) << "seed " << seed << ": workload too small to be meaningful";
    ASSERT_EQ(wheel, heap) << "execution order diverged for seed " << seed;
  }
}

// Golden sequence: a hand-written schedule whose execution order under the
// original heap semantics is pinned as a literal. The wheel must reproduce
// it exactly — and so must the reference core, guarding the guard.
template <typename Scheduler>
Trace RunGoldenScript() {
  Scheduler sched;
  Trace trace;
  auto record = [&](int label) { return [&trace, &sched, label]() { trace.emplace_back(sched.Now(), label); }; };
  sched.At(50, record(0));
  sched.At(10, record(1));
  sched.At(10, record(2));                     // tie with label 1: schedule order
  const uint64_t cancel_me = sched.At(30, record(3));
  sched.At(40'000'000, record(4));             // deep wheel (level 3)
  sched.At(5'000'000'000, record(9));          // beyond the 2^32 ns wheel horizon
  sched.At(20, [&, cancel_me]() {
    trace.emplace_back(sched.Now(), 5);
    sched.Cancel(cancel_me);                   // head-of-queue cancellation
    sched.After(0, record(6));                 // same-tick self-schedule
    sched.At(40'000'000, record(7));           // ties with 4 deep in the wheel
    sched.After(65'600, record(8));            // level-2 distance
    sched.At(5'000'000'000, record(10));       // ties with 9 across the overflow tier
  });
  sched.RunUntil(45);                          // deadline between events
  sched.RunUntil(45);                          // idempotent re-run at same deadline
  sched.RunToCompletion();
  return trace;
}

TEST(SimDeterminismTest, GoldenSequencePinned) {
  const Trace expected = {
      {10, 1}, {10, 2}, {20, 5}, {20, 6}, {50, 0},
      {65'620, 8}, {40'000'000, 4}, {40'000'000, 7},
      {5'000'000'000, 9}, {5'000'000'000, 10},
  };
  EXPECT_EQ(RunGoldenScript<ReferenceHeapScheduler>(), expected)
      << "reference heap drifted from the pinned golden sequence";
  EXPECT_EQ(RunGoldenScript<Simulator>(), expected)
      << "timer wheel diverged from the pinned golden sequence";
}

// Byte-identical metrics replay through the observability harness: the same
// pinned-seed chaos run, executed twice on the wheel scheduler, must export
// byte-identical metrics (Cluster::ExportMetrics -> MetricsRegistry JSON).
TEST(SimDeterminismTest, ExportMetricsReplayIsByteIdentical) {
  std::string metrics[2];
  for (int i = 0; i < 2; ++i) {
    obs::Observability::Options oo;
    oo.sampling = true;
    obs::Observability bundle(oo);
    ChaosRunConfig config;
    config.mode = ClusterMode::kHovercRaftPP;
    config.schedule = "random";
    config.seed = 17;
    config.nodes = 3;
    config.clients = 2;
    config.rate_rps_per_client = 2'000;
    config.duration = Millis(60);
    config.settle = Millis(60);
    config.obs = &bundle;
    RunChaosSchedule(config);
    std::ostringstream out;
    bundle.metrics().DumpJson(out);
    metrics[i] = out.str();
  }
  EXPECT_FALSE(metrics[0].empty());
  EXPECT_EQ(metrics[0], metrics[1]);
}

}  // namespace
}  // namespace hovercraft
