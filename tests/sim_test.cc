#include <gtest/gtest.h>

#include <vector>

#include "src/common/random.h"
#include "src/sim/cost_model.h"
#include "src/sim/distributions.h"
#include "src/sim/serial_resource.h"
#include "src/sim/simulator.h"

namespace hovercraft {
namespace {

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(30, [&]() { order.push_back(3); });
  sim.At(10, [&]() { order.push_back(1); });
  sim.At(20, [&]() { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(10, [&]() { order.push_back(1); });
  sim.At(10, [&]() { order.push_back(2); });
  sim.At(10, [&]() { order.push_back(3); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, AfterIsRelative) {
  Simulator sim;
  TimeNs fired_at = -1;
  sim.At(100, [&]() {
    sim.After(50, [&]() { fired_at = sim.Now(); });
  });
  sim.RunToCompletion();
  EXPECT_EQ(fired_at, 150);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.At(10, [&]() { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunToCompletion();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelTwiceFails) {
  Simulator sim;
  const EventId id = sim.At(10, []() {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(kInvalidEvent));
  sim.RunToCompletion();
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  sim.At(10, [&]() { ++count; });
  sim.At(20, [&]() { ++count; });
  sim.At(30, [&]() { ++count; });
  sim.RunUntil(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), 20);
  sim.RunToCompletion();
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 100) {
      sim.After(1, recurse);
    }
  };
  sim.At(0, recurse);
  sim.RunToCompletion();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.Now(), 99);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) {
    sim.At(i, []() {});
  }
  sim.RunToCompletion();
  EXPECT_EQ(sim.executed_events(), 5u);
}

// Satellite fix (ISSUE 4): counter semantics around cancellation. A
// cancelled event is never "executed", pending_events() excludes it
// immediately, and cancelled_events() counts each successful Cancel once.
TEST(SimulatorTest, CancelledEventsCountedSeparatelyFromExecuted) {
  Simulator sim;
  const EventId a = sim.At(10, []() {});
  sim.At(20, []() {});
  const EventId c = sim.At(30, []() {});
  EXPECT_EQ(sim.pending_events(), 3u);
  EXPECT_TRUE(sim.Cancel(a));
  EXPECT_TRUE(sim.Cancel(c));
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_EQ(sim.cancelled_events(), 2u);
  sim.RunToCompletion();
  EXPECT_EQ(sim.executed_events(), 1u);  // cancelled-then-popped must not count
  EXPECT_EQ(sim.cancelled_events(), 2u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

// Regression (seed bug): Cancel() used to accept any previously issued id,
// including one whose event already ran, permanently corrupting
// pending_events(). A handle goes stale the moment its event executes.
TEST(SimulatorTest, CancelAfterExecuteFails) {
  Simulator sim;
  const EventId id = sim.At(10, []() {});
  sim.RunToCompletion();
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_EQ(sim.cancelled_events(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

// A recycled slot must not resurrect an old handle: cancelling the stale id
// leaves the new event untouched.
TEST(SimulatorTest, StaleHandleDoesNotAliasRecycledSlot) {
  Simulator sim;
  const EventId old_id = sim.At(10, []() {});
  ASSERT_TRUE(sim.Cancel(old_id));
  bool ran = false;
  sim.At(10, [&]() { ran = true; });  // may reuse the freed slot
  EXPECT_FALSE(sim.Cancel(old_id));
  sim.RunToCompletion();
  EXPECT_TRUE(ran);
}

// Regression (seed bug): RunUntil checked only the queue head's time, so a
// cancelled head let it execute an event *beyond* `until`.
TEST(SimulatorTest, RunUntilWithCancelledHeadDoesNotOverrun) {
  Simulator sim;
  bool late_ran = false;
  const EventId head = sim.At(10, []() {});
  sim.At(20, [&]() { late_ran = true; });
  ASSERT_TRUE(sim.Cancel(head));
  EXPECT_EQ(sim.RunUntil(15), 0u);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(sim.Now(), 15);
  sim.RunToCompletion();
  EXPECT_TRUE(late_ran);
  EXPECT_EQ(sim.Now(), 20);
}

// Satellite fix (ISSUE 4): At() documents `when >= Now()` and now enforces
// it — scheduling into the past would silently reorder history.
TEST(SimulatorDeathTest, AtInThePastChecks) {
  Simulator sim;
  sim.At(100, []() {});
  sim.RunToCompletion();
  ASSERT_EQ(sim.Now(), 100);
  EXPECT_DEATH(sim.At(50, []() {}), "when");
}

namespace {
struct CountingHandler : EventHandler {
  Simulator* sim = nullptr;
  int fires = 0;
  int rearm_until = 0;
  TimeNs period = 0;
  void OnEvent() override {
    ++fires;
    if (fires < rearm_until) {
      sim->After(period, this);  // re-arm: stores only the pointer
    }
  }
};
}  // namespace

// The EventHandler flavour: recurring events re-arm through a vtable pointer
// with no callback object at all, and interleave correctly with lambdas.
TEST(SimulatorTest, EventHandlerPathFiresAndRearms) {
  Simulator sim;
  CountingHandler handler;
  handler.sim = &sim;
  handler.rearm_until = 5;
  handler.period = 10;
  std::vector<int> order;
  sim.At(10, &handler);
  sim.At(10, [&]() { order.push_back(1); });  // same time, scheduled later
  sim.RunToCompletion();
  EXPECT_EQ(handler.fires, 5);
  EXPECT_EQ(sim.Now(), 50);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.executed_events(), 6u);
}

// A handler event is cancellable like any other.
TEST(SimulatorTest, EventHandlerCancellable) {
  Simulator sim;
  CountingHandler handler;
  handler.sim = &sim;
  handler.rearm_until = 1;
  const EventId id = sim.At(10, &handler);
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunToCompletion();
  EXPECT_EQ(handler.fires, 0);
}

// Far-future events (beyond the wheel horizon, ~4.3s) cross the overflow
// tier and still execute in exact (time, schedule order) order, including
// ties straddling the tier boundary.
TEST(SimulatorTest, FarFutureEventsPreserveOrderAcrossOverflow) {
  Simulator sim;
  std::vector<int> order;
  const TimeNs far = Millis(5'000);                 // > 2^32 ns: overflow tier
  sim.At(far, [&]() { order.push_back(1); });
  sim.At(far + 1, [&]() { order.push_back(2); });
  sim.At(5, [&]() {
    // Scheduled *during* the run at the same far time: must run after the
    // earlier-scheduled overflow event at `far`, before the one at far+1.
    sim.At(far, [&]() { order.push_back(3); });
  });
  sim.At(Millis(100), [&]() { order.push_back(4); });  // deep wheel (level 3)
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{4, 1, 3, 2}));
  EXPECT_EQ(sim.Now(), far + 1);
}

// Cancelling a far-future (overflow-tier) event works and the reclaimed
// slot is accounted exactly once.
TEST(SimulatorTest, CancelFarFutureEvent) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.At(Millis(6'000), [&]() { ran = true; });
  sim.At(Millis(5'000), []() {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
  sim.RunToCompletion();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.Now(), Millis(5'000));
  EXPECT_EQ(sim.executed_events(), 1u);
  EXPECT_EQ(sim.cancelled_events(), 1u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

// RunUntil stopping mid-wheel must leave later schedules reachable: an event
// scheduled exactly at the paused deadline still runs on the next slice.
TEST(SimulatorTest, ScheduleAtPausedDeadlineRuns) {
  Simulator sim;
  sim.At(Millis(30), []() {});  // parked beyond the first slice
  sim.RunUntil(1000);
  ASSERT_EQ(sim.Now(), 1000);
  bool ran = false;
  sim.At(1000, [&]() { ran = true; });  // exactly at the pause point
  sim.RunUntil(2000);
  EXPECT_TRUE(ran);
  sim.RunToCompletion();
  EXPECT_EQ(sim.Now(), Millis(30));
}

// ---------------------------------------------------------------------------
// SerialResource
// ---------------------------------------------------------------------------

TEST(SerialResourceTest, FifoAndQueueing) {
  Simulator sim;
  SerialResource res(&sim);
  std::vector<TimeNs> done;
  sim.At(0, [&]() {
    res.Submit(100, [&]() { done.push_back(sim.Now()); });
    res.Submit(50, [&]() { done.push_back(sim.Now()); });
  });
  sim.RunToCompletion();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 100);  // first item finishes at t=100
  EXPECT_EQ(done[1], 150);  // second queues behind it
}

TEST(SerialResourceTest, IdleResourceStartsImmediately) {
  Simulator sim;
  SerialResource res(&sim);
  TimeNs done = -1;
  sim.At(500, [&]() { res.Submit(10, [&]() { done = sim.Now(); }); });
  sim.RunToCompletion();
  EXPECT_EQ(done, 510);
}

TEST(SerialResourceTest, TracksQueueLengthAndBusy) {
  Simulator sim;
  SerialResource res(&sim);
  sim.At(0, [&]() {
    res.Submit(100);
    res.Submit(100);
    EXPECT_EQ(res.queue_length(), 2);
    EXPECT_EQ(res.busy_until(), 200);
  });
  sim.RunToCompletion();
  EXPECT_EQ(res.queue_length(), 0);
  EXPECT_EQ(res.total_busy(), 200);
}

TEST(SerialResourceTest, ZeroCostWorkIsOrdered) {
  Simulator sim;
  SerialResource res(&sim);
  std::vector<int> order;
  sim.At(0, [&]() {
    res.Submit(10, [&]() { order.push_back(1); });
    res.Submit(0, [&]() { order.push_back(2); });
  });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// ---------------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------------

TEST(DistributionsTest, FixedAlwaysSame) {
  FixedDistribution d(Micros(1));
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(d.Sample(rng), Micros(1));
  }
  EXPECT_EQ(d.Mean(), Micros(1));
}

TEST(DistributionsTest, ExponentialMean) {
  ExponentialDistribution d(Micros(10));
  Rng rng(2);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(d.Sample(rng));
  }
  EXPECT_NEAR(sum / n, static_cast<double>(Micros(10)), Micros(10) * 0.05);
}

TEST(DistributionsTest, BimodalMatchesPaperShape) {
  // Paper section 7.3: mean 10us, 10% of requests are 10x longer.
  BimodalDistribution d(Micros(10), 0.1, 10.0);
  EXPECT_EQ(d.Mean(), Micros(10));
  EXPECT_EQ(d.long_value(), d.short_value() * 10);
  Rng rng(3);
  int long_count = 0;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const TimeNs s = d.Sample(rng);
    sum += static_cast<double>(s);
    if (s == d.long_value()) {
      ++long_count;
    } else {
      EXPECT_EQ(s, d.short_value());
    }
  }
  EXPECT_NEAR(static_cast<double>(long_count) / n, 0.1, 0.01);
  EXPECT_NEAR(sum / n, static_cast<double>(Micros(10)), Micros(10) * 0.03);
}

// ---------------------------------------------------------------------------
// CostModel
// ---------------------------------------------------------------------------

TEST(CostModelTest, FramesForSizes) {
  CostModel cm;
  EXPECT_EQ(cm.FramesFor(0), 1);
  EXPECT_EQ(cm.FramesFor(1), 1);
  EXPECT_EQ(cm.FramesFor(cm.mtu_payload_bytes), 1);
  EXPECT_EQ(cm.FramesFor(cm.mtu_payload_bytes + 1), 2);
  EXPECT_EQ(cm.FramesFor(6000), (6000 + cm.mtu_payload_bytes - 1) / cm.mtu_payload_bytes);
}

TEST(CostModelTest, SerializationMatchesLinkRate) {
  CostModel cm;
  // 6KB reply on a 10G link: ~5 frames, ~(6000+5*64)*8/10 ns ≈ 5056 ns.
  const TimeNs t = cm.SerializationDelay(6000);
  EXPECT_GT(t, Micros(4));
  EXPECT_LT(t, Micros(6));
  // A tiny message still pays one frame.
  EXPECT_GT(cm.SerializationDelay(8), 0);
}

TEST(CostModelTest, CpuScalesWithSize) {
  CostModel cm;
  EXPECT_GT(cm.RxCpu(512), cm.RxCpu(24));
  EXPECT_GT(cm.TxCpu(6000), cm.TxCpu(512));
  // Multi-frame messages pay per-frame cost.
  EXPECT_GE(cm.RxCpu(cm.mtu_payload_bytes * 3), 3 * cm.per_frame_rx_ns);
}

}  // namespace
}  // namespace hovercraft
