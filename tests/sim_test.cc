#include <gtest/gtest.h>

#include <vector>

#include "src/common/random.h"
#include "src/sim/cost_model.h"
#include "src/sim/distributions.h"
#include "src/sim/serial_resource.h"
#include "src/sim/simulator.h"

namespace hovercraft {
namespace {

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(30, [&]() { order.push_back(3); });
  sim.At(10, [&]() { order.push_back(1); });
  sim.At(20, [&]() { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(10, [&]() { order.push_back(1); });
  sim.At(10, [&]() { order.push_back(2); });
  sim.At(10, [&]() { order.push_back(3); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, AfterIsRelative) {
  Simulator sim;
  TimeNs fired_at = -1;
  sim.At(100, [&]() {
    sim.After(50, [&]() { fired_at = sim.Now(); });
  });
  sim.RunToCompletion();
  EXPECT_EQ(fired_at, 150);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.At(10, [&]() { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunToCompletion();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelTwiceFails) {
  Simulator sim;
  const EventId id = sim.At(10, []() {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(kInvalidEvent));
  sim.RunToCompletion();
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  sim.At(10, [&]() { ++count; });
  sim.At(20, [&]() { ++count; });
  sim.At(30, [&]() { ++count; });
  sim.RunUntil(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), 20);
  sim.RunToCompletion();
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 100) {
      sim.After(1, recurse);
    }
  };
  sim.At(0, recurse);
  sim.RunToCompletion();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.Now(), 99);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) {
    sim.At(i, []() {});
  }
  sim.RunToCompletion();
  EXPECT_EQ(sim.executed_events(), 5u);
}

// ---------------------------------------------------------------------------
// SerialResource
// ---------------------------------------------------------------------------

TEST(SerialResourceTest, FifoAndQueueing) {
  Simulator sim;
  SerialResource res(&sim);
  std::vector<TimeNs> done;
  sim.At(0, [&]() {
    res.Submit(100, [&]() { done.push_back(sim.Now()); });
    res.Submit(50, [&]() { done.push_back(sim.Now()); });
  });
  sim.RunToCompletion();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 100);  // first item finishes at t=100
  EXPECT_EQ(done[1], 150);  // second queues behind it
}

TEST(SerialResourceTest, IdleResourceStartsImmediately) {
  Simulator sim;
  SerialResource res(&sim);
  TimeNs done = -1;
  sim.At(500, [&]() { res.Submit(10, [&]() { done = sim.Now(); }); });
  sim.RunToCompletion();
  EXPECT_EQ(done, 510);
}

TEST(SerialResourceTest, TracksQueueLengthAndBusy) {
  Simulator sim;
  SerialResource res(&sim);
  sim.At(0, [&]() {
    res.Submit(100);
    res.Submit(100);
    EXPECT_EQ(res.queue_length(), 2);
    EXPECT_EQ(res.busy_until(), 200);
  });
  sim.RunToCompletion();
  EXPECT_EQ(res.queue_length(), 0);
  EXPECT_EQ(res.total_busy(), 200);
}

TEST(SerialResourceTest, ZeroCostWorkIsOrdered) {
  Simulator sim;
  SerialResource res(&sim);
  std::vector<int> order;
  sim.At(0, [&]() {
    res.Submit(10, [&]() { order.push_back(1); });
    res.Submit(0, [&]() { order.push_back(2); });
  });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// ---------------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------------

TEST(DistributionsTest, FixedAlwaysSame) {
  FixedDistribution d(Micros(1));
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(d.Sample(rng), Micros(1));
  }
  EXPECT_EQ(d.Mean(), Micros(1));
}

TEST(DistributionsTest, ExponentialMean) {
  ExponentialDistribution d(Micros(10));
  Rng rng(2);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(d.Sample(rng));
  }
  EXPECT_NEAR(sum / n, static_cast<double>(Micros(10)), Micros(10) * 0.05);
}

TEST(DistributionsTest, BimodalMatchesPaperShape) {
  // Paper section 7.3: mean 10us, 10% of requests are 10x longer.
  BimodalDistribution d(Micros(10), 0.1, 10.0);
  EXPECT_EQ(d.Mean(), Micros(10));
  EXPECT_EQ(d.long_value(), d.short_value() * 10);
  Rng rng(3);
  int long_count = 0;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const TimeNs s = d.Sample(rng);
    sum += static_cast<double>(s);
    if (s == d.long_value()) {
      ++long_count;
    } else {
      EXPECT_EQ(s, d.short_value());
    }
  }
  EXPECT_NEAR(static_cast<double>(long_count) / n, 0.1, 0.01);
  EXPECT_NEAR(sum / n, static_cast<double>(Micros(10)), Micros(10) * 0.03);
}

// ---------------------------------------------------------------------------
// CostModel
// ---------------------------------------------------------------------------

TEST(CostModelTest, FramesForSizes) {
  CostModel cm;
  EXPECT_EQ(cm.FramesFor(0), 1);
  EXPECT_EQ(cm.FramesFor(1), 1);
  EXPECT_EQ(cm.FramesFor(cm.mtu_payload_bytes), 1);
  EXPECT_EQ(cm.FramesFor(cm.mtu_payload_bytes + 1), 2);
  EXPECT_EQ(cm.FramesFor(6000), (6000 + cm.mtu_payload_bytes - 1) / cm.mtu_payload_bytes);
}

TEST(CostModelTest, SerializationMatchesLinkRate) {
  CostModel cm;
  // 6KB reply on a 10G link: ~5 frames, ~(6000+5*64)*8/10 ns ≈ 5056 ns.
  const TimeNs t = cm.SerializationDelay(6000);
  EXPECT_GT(t, Micros(4));
  EXPECT_LT(t, Micros(6));
  // A tiny message still pays one frame.
  EXPECT_GT(cm.SerializationDelay(8), 0);
}

TEST(CostModelTest, CpuScalesWithSize) {
  CostModel cm;
  EXPECT_GT(cm.RxCpu(512), cm.RxCpu(24));
  EXPECT_GT(cm.TxCpu(6000), cm.TxCpu(512));
  // Multi-frame messages pay per-frame cost.
  EXPECT_GE(cm.RxCpu(cm.mtu_payload_bytes * 3), 3 * cm.per_frame_rx_ns);
}

}  // namespace
}  // namespace hovercraft
