// InstallSnapshot state transfer: app-level snapshot round trips, raft-level
// straggler repair after compaction, and full-stack node revival.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/app/kvstore/service.h"
#include "src/app/synthetic.h"
#include "src/common/buffer.h"
#include "src/core/cluster.h"
#include "src/core/session_table.h"
#include "src/loadgen/client.h"
#include "src/loadgen/workload.h"

namespace hovercraft {
namespace {

// ---------------------------------------------------------------------------
// StateMachine snapshot round trips
// ---------------------------------------------------------------------------

TEST(SnapshotTest, SyntheticServiceRoundTrip) {
  SyntheticService a;
  SyntheticOp op;
  op.reply_bytes = 8;
  for (uint64_t i = 1; i <= 10; ++i) {
    RpcRequest req(RequestId{1, i}, R2p2Policy::kReplicatedReq, EncodeSyntheticOp(op, 24));
    a.Execute(req);
  }
  SyntheticService b;
  ASSERT_TRUE(b.RestoreState(a.SnapshotState()).ok());
  EXPECT_EQ(b.Digest(), a.Digest());
  EXPECT_EQ(b.ApplyCount(), a.ApplyCount());
}

TEST(SnapshotTest, KvServiceRoundTripAllValueTypes) {
  KvService a;
  KvCommand cmd;
  cmd.op = KvOpcode::kSet;
  cmd.key = "str";
  cmd.value = "hello";
  a.Apply(cmd);
  cmd.op = KvOpcode::kHset;
  cmd.key = "hash";
  cmd.field = "f1";
  cmd.value = "v1";
  a.Apply(cmd);
  cmd.field = "f2";
  cmd.value = "v2";
  a.Apply(cmd);
  cmd.op = KvOpcode::kRpush;
  cmd.key = "list";
  for (const char* item : {"a", "b", "c"}) {
    cmd.value = item;
    a.Apply(cmd);
  }

  KvService b;
  ASSERT_TRUE(b.RestoreState(a.SnapshotState()).ok());
  EXPECT_EQ(b.store().ContentDigest(), a.store().ContentDigest());
  EXPECT_EQ(b.store().Get("str").value(), "hello");
  EXPECT_EQ(b.store().Hget("hash", "f2").value(), "v2");
  EXPECT_EQ(b.store().Lrange("list", 0, -1).value(),
            (std::vector<std::string>{"a", "b", "c"}));
  // Restore replaces, not merges.
  KvService c;
  KvCommand other;
  other.op = KvOpcode::kSet;
  other.key = "junk";
  other.value = "x";
  c.Apply(other);
  ASSERT_TRUE(c.RestoreState(a.SnapshotState()).ok());
  EXPECT_FALSE(c.store().Exists("junk"));
  EXPECT_EQ(c.Digest(), a.Digest());
}

TEST(SnapshotTest, KvServiceRejectsGarbage) {
  KvService svc;
  EXPECT_FALSE(svc.RestoreState(nullptr).ok());
  EXPECT_FALSE(svc.RestoreState(MakeBody({1, 2, 3})).ok());
}

// ---------------------------------------------------------------------------
// Client-session table: the exactly-once dedup state rides inside snapshots.
// ---------------------------------------------------------------------------

TEST(SnapshotTest, SessionTableSerializeRoundTrip) {
  SessionTable a;
  a.Record(RequestId{1, 1}, MakeBody({10, 11}));
  a.Record(RequestId{1, 2}, MakeBody({20}));
  a.Record(RequestId{2, 5}, nullptr);  // executed, no reply payload recorded
  a.Acknowledge(1, 1);                 // GCs seq 1, keeps Executed() true

  EXPECT_TRUE(a.Executed(RequestId{1, 1}));
  EXPECT_EQ(a.CachedReply(RequestId{1, 1}), nullptr);
  EXPECT_TRUE(a.Executed(RequestId{1, 2}));
  EXPECT_TRUE(a.Executed(RequestId{2, 5}));
  EXPECT_FALSE(a.Executed(RequestId{1, 3}));
  EXPECT_FALSE(a.Executed(RequestId{3, 1}));

  BufferWriter w;
  a.Serialize(&w);
  const std::vector<uint8_t> bytes = w.TakeBytes();
  SessionTable b;
  BufferReader r(bytes);
  ASSERT_TRUE(b.Restore(&r).ok());
  EXPECT_EQ(b.client_count(), a.client_count());
  EXPECT_EQ(b.cached_replies(), a.cached_replies());
  EXPECT_EQ(b.AckWatermark(1), 1u);
  EXPECT_TRUE(b.Executed(RequestId{1, 1}));
  EXPECT_TRUE(b.Executed(RequestId{1, 2}));
  ASSERT_NE(b.CachedReply(RequestId{1, 2}), nullptr);
  EXPECT_EQ(*b.CachedReply(RequestId{1, 2}), std::vector<uint8_t>({20}));
  EXPECT_TRUE(b.Executed(RequestId{2, 5}));
  EXPECT_FALSE(b.Executed(RequestId{1, 3}));
  // Re-serializing the restored table reproduces the snapshot byte-for-byte
  // (null and empty replies canonicalize identically), so replica snapshots
  // stay comparable after a restore.
  BufferWriter w2;
  b.Serialize(&w2);
  EXPECT_EQ(w2.bytes(), bytes);

  // Truncated/garbage input is rejected, not crashed on.
  SessionTable c;
  const std::vector<uint8_t> garbage = {9, 9, 9};
  BufferReader bad(garbage);
  EXPECT_FALSE(c.Restore(&bad).ok());
}

// ---------------------------------------------------------------------------
// Full-stack: a node that is down past the compaction horizon gets repaired
// by a snapshot transfer when it revives.
// ---------------------------------------------------------------------------

TEST(SnapshotTest, RevivedStragglerRepairedBySnapshot) {
  ClusterConfig config;
  config.mode = ClusterMode::kHovercRaft;
  config.nodes = 3;
  config.seed = 99;
  config.replier_policy = ReplierPolicy::kJbsq;
  config.app_factory = []() { return std::make_unique<SyntheticService>(); };
  // Aggressive compaction so the dead node's gap is compacted away quickly.
  config.raft.log_retention_entries = 256;
  config.server_template.straggler_lag_entries = 512;
  config.server_template.compaction_interval = Millis(5);
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);

  SyntheticWorkloadConfig wc;
  wc.service_time = std::make_shared<FixedDistribution>(Micros(1));
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.costs, [&cluster]() { return cluster.ClientTarget(); },
      std::make_unique<SyntheticWorkload>(wc), 50'000, 17);
  cluster.network().Attach(client.get());

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(200));
  cluster.sim().RunUntil(t0 + Millis(20));

  // A follower dies and misses tens of thousands of entries.
  const NodeId leader = cluster.LeaderId();
  const NodeId victim = (leader + 1) % 3;
  cluster.server(victim).set_failed(true);
  cluster.sim().RunUntil(t0 + Millis(150));

  // Compaction must have proceeded past the victim's position despite it
  // being down (straggler allowance).
  const LogIndex leader_first = cluster.server(leader).raft()->log().first_index();
  EXPECT_GT(leader_first, cluster.server(victim).raft()->log().last_index());

  // The machine comes back (process restart with its old log).
  cluster.server(victim).set_failed(false);
  cluster.sim().RunUntil(t0 + Millis(400));

  // It was repaired by state transfer and converged.
  EXPECT_GE(cluster.server(victim).server_stats().snapshots_restored, 1u);
  EXPECT_GE(cluster.server(leader).raft()->stats().snapshots_sent, 1u);
  EXPECT_EQ(cluster.server(victim).app().Digest(), cluster.server(leader).app().Digest());
  EXPECT_EQ(cluster.server(victim).app().ApplyCount(),
            cluster.server(leader).app().ApplyCount());
  EXPECT_EQ(cluster.server(victim).raft()->commit_index(),
            cluster.server(leader).raft()->commit_index());
}

TEST(SnapshotTest, KvStoreStateSurvivesSnapshotRepair) {
  ClusterConfig config;
  config.mode = ClusterMode::kHovercRaft;
  config.nodes = 3;
  config.seed = 101;
  config.replier_policy = ReplierPolicy::kJbsq;
  config.app_factory = []() { return std::make_unique<KvService>(); };
  config.raft.log_retention_entries = 128;
  config.server_template.straggler_lag_entries = 256;
  config.server_template.compaction_interval = Millis(5);
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);

  // Write-heavy kv workload so real state accumulates.
  class KvWriteWorkload final : public Workload {
   public:
    Op Next(Rng& rng) override {
      KvCommand cmd;
      cmd.op = KvOpcode::kSet;
      cmd.key = "key:" + std::to_string(rng.NextBelow(500));
      cmd.value = "value-" + std::to_string(rng.Next());
      Op op;
      op.body = EncodeKvCommand(cmd);
      op.read_only = false;
      return op;
    }
  };
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.costs, [&cluster]() { return cluster.ClientTarget(); },
      std::make_unique<KvWriteWorkload>(), 20'000, 19);
  cluster.network().Attach(client.get());

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(200));
  cluster.sim().RunUntil(t0 + Millis(20));
  const NodeId leader = cluster.LeaderId();
  const NodeId victim = (leader + 2) % 3;
  cluster.server(victim).set_failed(true);
  cluster.sim().RunUntil(t0 + Millis(150));
  cluster.server(victim).set_failed(false);
  cluster.sim().RunUntil(t0 + Millis(500));

  EXPECT_GE(cluster.server(victim).server_stats().snapshots_restored, 1u);
  const auto& victim_store = static_cast<const KvService&>(cluster.server(victim).app()).store();
  const auto& leader_store = static_cast<const KvService&>(cluster.server(leader).app()).store();
  EXPECT_GT(victim_store.key_count(), 0u);
  EXPECT_EQ(victim_store.ContentDigest(), leader_store.ContentDigest());
}

// The dedup state must ride inside InstallSnapshot: a straggler repaired by
// state transfer rebuilds the same session table as the leader, so a
// retransmission arriving after the repair is still recognized as executed.
TEST(SnapshotTest, SessionTableSurvivesSnapshotRepair) {
  ClusterConfig config;
  config.mode = ClusterMode::kHovercRaft;
  config.nodes = 3;
  config.seed = 103;
  config.replier_policy = ReplierPolicy::kJbsq;
  config.app_factory = []() { return std::make_unique<SyntheticService>(); };
  config.raft.log_retention_entries = 256;
  config.server_template.straggler_lag_entries = 512;
  config.server_template.compaction_interval = Millis(5);
  Cluster cluster(config);
  ASSERT_NE(cluster.WaitForLeader(), kInvalidNode);

  SyntheticWorkloadConfig wc;
  wc.service_time = std::make_shared<FixedDistribution>(Micros(1));
  auto client = std::make_unique<ClientHost>(
      &cluster.sim(), config.costs, [&cluster]() { return cluster.ClientTarget(); },
      std::make_unique<SyntheticWorkload>(wc), 50'000, 23);
  cluster.network().Attach(client.get());

  const TimeNs t0 = cluster.sim().Now();
  client->StartLoad(t0, t0 + Millis(200));
  cluster.sim().RunUntil(t0 + Millis(20));
  const NodeId leader = cluster.LeaderId();
  const NodeId victim = (leader + 1) % 3;
  cluster.server(victim).set_failed(true);
  cluster.sim().RunUntil(t0 + Millis(150));
  cluster.server(victim).set_failed(false);
  cluster.sim().RunUntil(t0 + Millis(500));

  ASSERT_GE(cluster.server(victim).server_stats().snapshots_restored, 1u);
  ASSERT_EQ(cluster.server(victim).raft()->commit_index(),
            cluster.server(leader).raft()->commit_index());
  // The repaired replica tracked the writer's session across the transfer...
  EXPECT_GT(cluster.server(victim).sessions().client_count(), 0u);
  EXPECT_TRUE(cluster.server(victim).sessions().Executed(RequestId{client->id(), 1}));
  // ...and its whole table is byte-identical to the leader's.
  auto serialize = [](const SessionTable& table) {
    BufferWriter w;
    table.Serialize(&w);
    return w.TakeBytes();
  };
  EXPECT_EQ(serialize(cluster.server(victim).sessions()),
            serialize(cluster.server(leader).sessions()));
}

}  // namespace
}  // namespace hovercraft
