#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "src/common/random.h"
#include "src/stats/histogram.h"
#include "src/stats/summary.h"
#include "src/stats/timeseries.h"

namespace hovercraft {
namespace {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(99), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1234);
  EXPECT_EQ(h.max(), 1234);
  EXPECT_EQ(h.Percentile(50), 1234);
  EXPECT_EQ(h.Percentile(99), 1234);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h(7);
  for (int64_t v = 0; v < 128; ++v) {
    h.Record(v);
  }
  // Values below 2^7 land in exact buckets; either median of 0..127 is fine.
  EXPECT_GE(h.ValueAtQuantile(0.5), 63);
  EXPECT_LE(h.ValueAtQuantile(0.5), 64);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 127);
}

TEST(HistogramTest, RelativeErrorBounded) {
  Histogram h(7);
  Rng rng(17);
  std::vector<int64_t> values;
  for (int i = 0; i < 100000; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextBelow(100'000'000)) + 1;
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const int64_t exact = values[static_cast<size_t>(q * (values.size() - 1))];
    const int64_t approx = h.ValueAtQuantile(q);
    const double rel_err =
        std::abs(static_cast<double>(approx - exact)) / static_cast<double>(exact);
    EXPECT_LT(rel_err, 0.02) << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
}

TEST(HistogramTest, MeanMatches) {
  Histogram h;
  for (int64_t v : {10, 20, 30, 40}) {
    h.Record(v);
  }
  EXPECT_DOUBLE_EQ(h.Mean(), 25.0);
}

TEST(HistogramTest, RecordNWeightsCount) {
  Histogram h;
  h.RecordN(100, 99);
  h.RecordN(1'000'000, 1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_LE(h.Percentile(50), 101);
  EXPECT_GE(h.Percentile(99.5), 990'000);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_GE(a.max(), 1000);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Record(5);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0);
}

TEST(HistogramTest, LargeValuesDoNotOverflow) {
  Histogram h;
  h.Record(int64_t{1} << 60);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max(), int64_t{1} << 60);
  EXPECT_GE(h.Percentile(50), (int64_t{1} << 60) - ((int64_t{1} << 60) >> 6));
}

// The 0th percentile is the observed minimum, not the bound of whatever
// bucket the minimum landed in.
TEST(HistogramTest, ZerothQuantileIsMin) {
  Histogram h;
  h.Record(1000);  // bucketed: upper bound 1007 at 7 sub-bucket bits
  h.Record(2000);
  h.Record(4000);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 1000);
  EXPECT_EQ(h.ValueAtQuantile(-0.5), 1000);  // out-of-range clamps, not UB
}

TEST(HistogramTest, FullQuantileIsMax) {
  Histogram h;
  for (int64_t v : {1000, 2000, 3000}) {  // count=3: q*count is inexact
    h.Record(v);
  }
  EXPECT_EQ(h.ValueAtQuantile(1.0), 3000);
  EXPECT_EQ(h.ValueAtQuantile(1.5), 3000);
}

// A tiny-but-positive quantile must not round its target rank down to zero;
// it resolves to the first non-empty bucket, clamped to the observed range.
TEST(HistogramTest, TinyQuantileTargetsFirstSample) {
  Histogram h;
  h.Record(1000);
  h.Record(500'000);
  const int64_t v = h.ValueAtQuantile(1e-12);
  EXPECT_GE(v, 1000);
  EXPECT_LE(v, 1007);  // within the min's bucket, never the 500k sample
}

// Samples in the top power-of-two range saturate cleanly instead of
// overflowing the bucket bound into a negative value.
TEST(HistogramTest, OverflowBucketSaturates) {
  Histogram h;
  h.Record(std::numeric_limits<int64_t>::max());
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Percentile(50), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(h.Percentile(99.99), std::numeric_limits<int64_t>::max());
  h.Record((int64_t{1} << 62) + 12345);
  EXPECT_GT(h.Percentile(1), 0);  // never negative
}

// Merging shards and then asking for quantiles must agree exactly with one
// histogram that recorded every sample directly (same bucket layout), the
// property RunLoadPoint relies on when it merges per-client latencies.
TEST(HistogramTest, MergeThenQuantileMatchesDirect) {
  Histogram direct;
  Histogram shards[4];
  Histogram merged;
  Rng rng(91);
  for (int i = 0; i < 40000; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextExponential(80'000)) + 1;
    direct.Record(v);
    shards[i % 4].Record(v);
  }
  for (Histogram& shard : shards) {
    merged.Merge(shard);
  }
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_EQ(merged.min(), direct.min());
  EXPECT_EQ(merged.max(), direct.max());
  EXPECT_DOUBLE_EQ(merged.Mean(), direct.Mean());
  for (double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(merged.ValueAtQuantile(q), direct.ValueAtQuantile(q)) << "q=" << q;
  }
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram populated;
  populated.Record(42);
  Histogram empty;
  populated.Merge(empty);
  EXPECT_EQ(populated.count(), 1u);
  EXPECT_EQ(populated.Percentile(50), 42);
  empty.Merge(populated);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.min(), 42);
  EXPECT_EQ(empty.Percentile(99), 42);
}

// Quantiles are monotone in q.
TEST(HistogramTest, QuantilesMonotone) {
  Histogram h;
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextExponential(50'000)));
  }
  int64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const int64_t v = h.ValueAtQuantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

// ---------------------------------------------------------------------------
// Summary
// ---------------------------------------------------------------------------

TEST(SummaryTest, Empty) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.StdDev(), 0.0);
}

TEST(SummaryTest, MeanAndVariance) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Record(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-9);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

// ---------------------------------------------------------------------------
// Timeseries
// ---------------------------------------------------------------------------

TEST(TimeseriesTest, BinsByTime) {
  Timeseries ts(Seconds(1));
  ts.Record(Millis(100), 10);
  ts.Record(Millis(900), 20);
  ts.Record(Seconds(1) + Millis(1), 30);
  const auto points = ts.Points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].samples, 2u);
  EXPECT_EQ(points[1].samples, 1u);
  EXPECT_EQ(points[0].start, 0);
  EXPECT_EQ(points[1].start, Seconds(1));
}

TEST(TimeseriesTest, CountsEvents) {
  Timeseries ts(Millis(100));
  ts.Count(Millis(50));
  ts.Count(Millis(60), 4);
  const auto points = ts.Points();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].events, 5u);
  EXPECT_EQ(points[0].samples, 0u);
}

TEST(TimeseriesTest, PercentilesPerBin) {
  Timeseries ts(Millis(10));
  for (int i = 0; i < 100; ++i) {
    ts.Record(Millis(5), i < 99 ? 100 : 10'000);
  }
  const auto points = ts.Points();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_LE(points[0].p50, 101);
  EXPECT_GE(points[0].p99, 100);
}

}  // namespace
}  // namespace hovercraft
