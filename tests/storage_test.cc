// Unit coverage for the simulated durable-storage layer: SimDisk barrier and
// crash semantics, and StableStorage's WAL framing, recovery rules, and
// corruption handling (docs/durability.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/sim/simulator.h"
#include "src/storage/fsync_policy.h"
#include "src/storage/sim_disk.h"
#include "src/storage/stable_storage.h"

namespace hovercraft {
namespace {

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> b) { return std::vector<uint8_t>(b); }

void Append(SimDisk* disk, const std::string& file, const std::vector<uint8_t>& b) {
  disk->Append(file, b.data(), b.size());
}

// ---------------------------------------------------------------------------
// SimDisk
// ---------------------------------------------------------------------------

TEST(SimDiskTest, ZeroLatencySyncCompletesInlineAndSchedulesNothing) {
  Simulator sim;
  SimDisk disk(&sim, 1, 0);
  Append(&disk, "f", Bytes({1, 2, 3}));
  bool ran = false;
  EXPECT_TRUE(disk.Sync([&]() { ran = true; }, /*coalesce=*/true));
  EXPECT_TRUE(ran);
  EXPECT_EQ(disk.SyncedSize("f"), 3u);
  // Nothing was scheduled: the simulator has no pending events.
  EXPECT_EQ(sim.RunToCompletion(), 0u);
}

TEST(SimDiskTest, PricedSyncCompletesAfterLatency) {
  Simulator sim;
  SimDisk disk(&sim, 1, 500);
  Append(&disk, "f", Bytes({1, 2, 3}));
  TimeNs done_at = -1;
  EXPECT_FALSE(disk.Sync([&]() { done_at = sim.Now(); }, true));
  EXPECT_EQ(disk.SyncedSize("f"), 0u);
  sim.RunToCompletion();
  EXPECT_EQ(done_at, 500);
  EXPECT_EQ(disk.SyncedSize("f"), 3u);
}

TEST(SimDiskTest, CrashDropsUnsyncedSuffixAndPendingCallbacks) {
  Simulator sim;
  SimDisk disk(&sim, 1, 500);
  Append(&disk, "f", Bytes({1, 2, 3, 4}));
  bool ran = false;
  disk.Sync([&]() { ran = true; }, true);
  disk.Crash();
  sim.RunToCompletion();
  EXPECT_FALSE(ran);  // the process died; nothing acks from the grave
  EXPECT_EQ(disk.Size("f"), 0u);
  EXPECT_EQ(disk.stats().bytes_lost, 4u);
}

TEST(SimDiskTest, CrashKeepsSyncedPrefix) {
  Simulator sim;
  SimDisk disk(&sim, 1, 0);
  Append(&disk, "f", Bytes({1, 2}));
  disk.SyncNow();
  Append(&disk, "f", Bytes({3, 4, 5}));
  disk.Crash();
  EXPECT_EQ(disk.Read("f"), Bytes({1, 2}));
}

TEST(SimDiskTest, TornCrashKeepsStrictPrefixOfUnsyncedTail) {
  Simulator sim;
  SimDisk disk(&sim, 7, 0);
  Append(&disk, "f", Bytes({1, 2}));
  disk.SyncNow();
  Append(&disk, "f", Bytes({3, 4, 5, 6}));
  disk.set_next_crash_torn();
  disk.Crash();
  // The synced prefix always survives; at most a strict prefix of the
  // unsynced tail does.
  ASSERT_GE(disk.Size("f"), 2u);
  ASSERT_LT(disk.Size("f"), 6u);
  EXPECT_EQ(disk.Read("f")[0], 1);
  EXPECT_EQ(disk.Read("f")[1], 2);
}

// Regression: a barrier requested while a flush is already in flight must NOT
// ride that flush — its frontier was captured at start and does not cover
// bytes appended since. Riding it acked unsynced entries, which a power
// failure then un-committed (found by the disk-corrupt-entry chaos pair).
TEST(SimDiskTest, CoalescedSyncNeverRidesTheRunningFlush) {
  Simulator sim;
  SimDisk disk(&sim, 1, 500);
  Append(&disk, "f", Bytes({1}));
  disk.Sync(nullptr, true);  // starts the flush; frontier = 1 byte
  Append(&disk, "f", Bytes({2, 3}));
  size_t covered_at_cb = 0;
  disk.Sync([&]() { covered_at_cb = disk.SyncedSize("f"); }, /*coalesce=*/true);
  sim.RunToCompletion();
  EXPECT_EQ(covered_at_cb, 3u);  // the callback's barrier covers both appends
}

TEST(SimDiskTest, GroupCommitCoalescesQueuedBarriers) {
  Simulator sim;
  SimDisk disk(&sim, 1, 500);
  Append(&disk, "f", Bytes({1}));
  disk.Sync(nullptr, true);  // running flush
  int callbacks = 0;
  for (int i = 0; i < 5; ++i) {
    Append(&disk, "f", Bytes({static_cast<uint8_t>(i)}));
    disk.Sync([&]() { ++callbacks; }, /*coalesce=*/true);
  }
  sim.RunToCompletion();
  EXPECT_EQ(callbacks, 5);
  // One running flush + one coalesced group: two priced barriers, not six.
  EXPECT_EQ(disk.stats().syncs, 2u);
}

TEST(SimDiskTest, StallPricesEverySubsequentBarrier) {
  Simulator sim;
  SimDisk disk(&sim, 1, 100);
  disk.set_stall(900);
  Append(&disk, "f", Bytes({1}));
  TimeNs done_at = -1;
  disk.Sync([&]() { done_at = sim.Now(); }, true);
  sim.RunToCompletion();
  EXPECT_EQ(done_at, 1000);
  disk.set_stall(0);
}

TEST(SimDiskTest, FlipByteOnlyTouchesExistingBytes) {
  Simulator sim;
  SimDisk disk(&sim, 1, 0);
  Append(&disk, "f", Bytes({0x00, 0x10}));
  EXPECT_FALSE(disk.FlipByte("missing", 0));
  EXPECT_FALSE(disk.FlipByte("f", 2));
  EXPECT_TRUE(disk.FlipByte("f", 1));
  EXPECT_NE(disk.Read("f")[1], 0x10);
}

// ---------------------------------------------------------------------------
// StableStorage
// ---------------------------------------------------------------------------

std::vector<uint8_t> Payload(uint8_t tag) { return std::vector<uint8_t>(8, tag); }

TEST(StableStorageTest, HardStateAndEntriesRoundTrip) {
  Simulator sim;
  SimDisk disk(&sim, 1, 0);
  StableStorage storage(&disk, FsyncPolicy::kGroupCommit);
  storage.PersistHardState(3, 1);
  for (LogIndex i = 1; i <= 5; ++i) {
    storage.AppendEntry(i, 3, /*replier=*/2, Payload(static_cast<uint8_t>(i)));
  }
  storage.Sync(nullptr);

  StableStorage::Recovery rec = storage.Recover(/*protocol_aware=*/true);
  EXPECT_EQ(rec.term, 3u);
  EXPECT_EQ(rec.voted_for, 1);
  EXPECT_EQ(rec.base_index, 0u);
  ASSERT_EQ(rec.entries.size(), 5u);
  EXPECT_FALSE(rec.suspect);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(rec.entries[i].idx, i + 1);
    EXPECT_EQ(rec.entries[i].term, 3u);
    EXPECT_EQ(rec.entries[i].replier, 2);
    EXPECT_EQ(rec.entries[i].payload, Payload(static_cast<uint8_t>(i + 1)));
  }
}

TEST(StableStorageTest, CrashLosesUnsyncedEntriesOnly) {
  Simulator sim;
  SimDisk disk(&sim, 1, 500);
  StableStorage storage(&disk, FsyncPolicy::kGroupCommit);
  storage.PersistHardState(1, kInvalidNode);
  storage.AppendEntry(1, 1, 0, Payload(1));
  storage.AppendEntry(2, 1, 0, Payload(2));
  storage.Sync(nullptr);
  sim.RunToCompletion();  // barrier covers entries 1-2
  storage.AppendEntry(3, 1, 0, Payload(3));
  storage.Crash();

  StableStorage::Recovery rec = storage.Recover(true);
  ASSERT_EQ(rec.entries.size(), 2u);
  EXPECT_EQ(rec.entries.back().idx, 2u);
  // Losing an unsynced (hence unacked) suffix is clean, not suspect.
  EXPECT_FALSE(rec.suspect);
  EXPECT_EQ(storage.stats().torn_truncations, 0u);
}

TEST(StableStorageTest, TornTailIsTruncatedWithoutSuspicion) {
  Simulator sim;
  SimDisk disk(&sim, 11, 500);
  StableStorage storage(&disk, FsyncPolicy::kGroupCommit);
  storage.AppendEntry(1, 1, 0, Payload(1));
  storage.Sync(nullptr);
  sim.RunToCompletion();
  storage.AppendEntry(2, 1, 0, Payload(2));
  disk.set_next_crash_torn();
  storage.Crash();

  StableStorage::Recovery rec = storage.Recover(true);
  ASSERT_EQ(rec.entries.size(), 1u);
  EXPECT_FALSE(rec.suspect);
  // A partial record at the physical end is a torn write, not corruption.
  EXPECT_EQ(storage.stats().corrupt_records, 0u);
}

TEST(StableStorageTest, CorruptedCommittedEntryMakesRecoverySuspect) {
  Simulator sim;
  SimDisk disk(&sim, 1, 0);
  StableStorage storage(&disk, FsyncPolicy::kGroupCommit);
  for (LogIndex i = 1; i <= 4; ++i) {
    storage.AppendEntry(i, 1, 0, Payload(static_cast<uint8_t>(i)));
  }
  storage.Sync(nullptr);
  ASSERT_TRUE(storage.CorruptEntry(2));

  StableStorage::Recovery rec = storage.Recover(true);
  // The log is cut at the damage: entries 2-4 are gone even though 3 and 4
  // are intact — contiguity is what replay can vouch for.
  ASSERT_EQ(rec.entries.size(), 1u);
  EXPECT_EQ(rec.entries[0].idx, 1u);
  EXPECT_TRUE(rec.suspect);
  // The floor covers everything that was ever durable, so the node cannot
  // campaign until a leader has re-fed it all four entries.
  EXPECT_GE(rec.suspect_floor, 4u);
  EXPECT_EQ(storage.stats().corrupt_records, 1u);
  EXPECT_EQ(storage.stats().suspect_recoveries, 1u);
}

TEST(StableStorageTest, NaiveRecoveryTruncatesSilently) {
  Simulator sim;
  SimDisk disk(&sim, 1, 0);
  StableStorage storage(&disk, FsyncPolicy::kGroupCommit);
  for (LogIndex i = 1; i <= 4; ++i) {
    storage.AppendEntry(i, 1, 0, Payload(static_cast<uint8_t>(i)));
  }
  storage.Sync(nullptr);
  ASSERT_TRUE(storage.CorruptEntry(2));

  StableStorage::Recovery rec = storage.Recover(/*protocol_aware=*/false);
  ASSERT_EQ(rec.entries.size(), 1u);
  EXPECT_FALSE(rec.suspect);  // the unsafe control: amnesia without the flag
  EXPECT_EQ(storage.stats().suspect_recoveries, 0u);
}

TEST(StableStorageTest, TruncateRecordRewindsReplay) {
  Simulator sim;
  SimDisk disk(&sim, 1, 0);
  StableStorage storage(&disk, FsyncPolicy::kGroupCommit);
  storage.AppendEntry(1, 1, 0, Payload(1));
  storage.AppendEntry(2, 1, 0, Payload(2));
  storage.AppendEntry(3, 1, 0, Payload(3));
  storage.AppendTruncate(2);  // conflict: entries 2-3 were replaced
  storage.AppendEntry(2, 2, 0, Payload(9));
  storage.Sync(nullptr);

  StableStorage::Recovery rec = storage.Recover(true);
  ASSERT_EQ(rec.entries.size(), 2u);
  EXPECT_EQ(rec.entries[1].idx, 2u);
  EXPECT_EQ(rec.entries[1].term, 2u);
  EXPECT_EQ(rec.entries[1].payload, Payload(9));
}

TEST(StableStorageTest, CompactDropsWholeSegmentsBelowBase) {
  Simulator sim;
  SimDisk disk(&sim, 1, 0);
  // Tiny segments force rotation every few records.
  StableStorage storage(&disk, FsyncPolicy::kGroupCommit, /*segment_bytes=*/256);
  for (LogIndex i = 1; i <= 40; ++i) {
    storage.AppendEntry(i, 1, 0, Payload(static_cast<uint8_t>(i)));
  }
  storage.Sync(nullptr);
  ASSERT_GT(disk.List("wal-").size(), 1u);
  storage.AppendCompact(30, 1);
  EXPECT_GT(storage.stats().segments_dropped, 0u);

  StableStorage::Recovery rec = storage.Recover(true);
  EXPECT_EQ(rec.base_index, 30u);
  EXPECT_EQ(rec.base_term, 1u);
  ASSERT_EQ(rec.entries.size(), 10u);
  EXPECT_EQ(rec.entries.front().idx, 31u);
  EXPECT_FALSE(rec.suspect);
}

TEST(StableStorageTest, SnapshotRoundTripsAndSurvivesCrash) {
  Simulator sim;
  SimDisk disk(&sim, 1, 500);
  StableStorage storage(&disk, FsyncPolicy::kGroupCommit);
  storage.SaveSnapshot(12, 2, Payload(7));
  storage.Crash();  // snapshots are synced inline; the crash loses nothing

  StableStorage::Recovery rec = storage.Recover(true);
  ASSERT_TRUE(rec.has_snapshot);
  EXPECT_EQ(rec.snapshot_index, 12u);
  EXPECT_EQ(rec.snapshot_term, 2u);
  EXPECT_EQ(rec.snapshot_payload, Payload(7));
  EXPECT_FALSE(rec.suspect);
}

TEST(StableStorageTest, DamagedSnapshotMarksRecoverySuspect) {
  Simulator sim;
  SimDisk disk(&sim, 1, 0);
  StableStorage storage(&disk, FsyncPolicy::kGroupCommit);
  storage.SaveSnapshot(12, 2, Payload(7));
  ASSERT_TRUE(disk.FlipByte("snapshot", disk.Size("snapshot") - 1));

  StableStorage::Recovery rec = storage.Recover(true);
  EXPECT_FALSE(rec.has_snapshot);
  EXPECT_TRUE(rec.suspect);
}

TEST(StableStorageTest, SyncPerAppendDoesNotCoalesce) {
  Simulator sim;
  SimDisk disk(&sim, 1, 500);
  StableStorage storage(&disk, FsyncPolicy::kSyncPerAppend);
  for (LogIndex i = 1; i <= 3; ++i) {
    storage.AppendEntry(i, 1, 0, Payload(static_cast<uint8_t>(i)));
    storage.Sync(nullptr);
  }
  sim.RunToCompletion();
  EXPECT_EQ(disk.stats().syncs, 3u);  // one priced barrier per append

  SimDisk disk2(&sim, 1, 500);
  StableStorage grouped(&disk2, FsyncPolicy::kGroupCommit);
  for (LogIndex i = 1; i <= 3; ++i) {
    grouped.AppendEntry(i, 1, 0, Payload(static_cast<uint8_t>(i)));
    grouped.Sync(nullptr);
  }
  sim.RunToCompletion();
  EXPECT_EQ(disk2.stats().syncs, 2u);  // running barrier + one coalesced group
}

}  // namespace
}  // namespace hovercraft
