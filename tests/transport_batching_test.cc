// eRPC-style transport batching (CostModel::tx_batching): coalescing
// mechanics, physical/logical counter split, fault-injection transparency,
// and the non-negotiable property that batching never changes a chaos
// verdict — pinned-seed runs are batched/unbatched verdict-identical and
// batched runs are trace-deterministic (flush order pinned).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/chaos/runner.h"
#include "src/net/host.h"
#include "src/net/network.h"
#include "src/net/packet.h"
#include "src/r2p2/messages.h"

namespace hovercraft {
namespace {

class SinkHost final : public Host {
 public:
  SinkHost(Simulator* sim, const CostModel& costs, Kind kind = Kind::kServer)
      : Host(sim, costs, kind) {}

  void HandleMessage(HostId src, const MessagePtr& msg) override {
    received.push_back({src, msg, sim()->Now()});
  }

  struct Received {
    HostId src;
    MessagePtr msg;
    TimeNs at;
  };
  std::vector<Received> received;
};

MessagePtr SmallRequest(HostId client, uint64_t seq, int32_t bytes = 24) {
  return std::make_shared<RpcRequest>(RequestId{client, seq}, R2p2Policy::kReplicatedReq,
                                      MakeBody(std::vector<uint8_t>(static_cast<size_t>(bytes))));
}

struct BatchingFixture {
  BatchingFixture() {
    costs.tx_batching = true;
    costs.tx_batch_delay_ns = 0;  // doorbell at the end of the current instant
  }
  Simulator sim;
  CostModel costs;
  Network net{&sim, costs, 1};
};

TEST(TransportBatchingTest, CoalescesSameInstantSendsIntoOneFrame) {
  BatchingFixture f;
  SinkHost a(&f.sim, f.costs);
  SinkHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);

  constexpr int kMsgs = 5;
  f.sim.At(0, [&]() {
    for (uint64_t i = 0; i < kMsgs; ++i) {
      a.Send(b.id(), SmallRequest(a.id(), i + 1));
    }
  });
  f.sim.RunToCompletion();

  // All five logical messages arrive, in send order (flush order is the
  // enqueue order — this pins it).
  ASSERT_EQ(b.received.size(), static_cast<size_t>(kMsgs));
  for (size_t i = 0; i < b.received.size(); ++i) {
    const auto* req = dynamic_cast<const RpcRequest*>(b.received[i].msg.get());
    ASSERT_NE(req, nullptr);
    EXPECT_EQ(req->rid().seq, i + 1);
  }
  // Logical counters see five messages; physical counters see one frame.
  EXPECT_EQ(a.counters().tx_msgs, static_cast<uint64_t>(kMsgs));
  EXPECT_EQ(a.counters().tx_batches, 1u);
  EXPECT_EQ(a.counters().tx_physical_frames, 1u);
  EXPECT_EQ(b.counters().rx_msgs, static_cast<uint64_t>(kMsgs));
  EXPECT_EQ(b.counters().rx_batches, 1u);
  EXPECT_EQ(b.counters().rx_physical_frames, 1u);
  // All members dispatch within one rx event: same arrival timestamp.
  EXPECT_EQ(b.received.front().at, b.received.back().at);
}

TEST(TransportBatchingTest, WireByteAttributionTelescopes) {
  BatchingFixture f;
  SinkHost a(&f.sim, f.costs);
  SinkHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);

  f.sim.At(0, [&]() {
    a.Send(b.id(), SmallRequest(a.id(), 1, 100));
    a.Send(b.id(), SmallRequest(a.id(), 2, 200));
    a.Send(b.id(), std::make_shared<FeedbackMsg>(RequestId{a.id(), 1}));
  });
  f.sim.RunToCompletion();

  // Per-type wire bytes (members + the BATCH framing share) sum exactly to
  // the total wire bytes, on both ends.
  uint64_t tx_sum = 0;
  for (const auto& [type, bytes] : a.counters().tx_wire_bytes_by_type) {
    tx_sum += bytes;
  }
  EXPECT_EQ(tx_sum, a.counters().tx_wire_bytes);
  EXPECT_GT(a.counters().tx_wire_bytes_by_type.at("BATCH"), 0u);
  uint64_t rx_sum = 0;
  for (const auto& [type, bytes] : b.counters().rx_wire_bytes_by_type) {
    rx_sum += bytes;
  }
  EXPECT_EQ(rx_sum, b.counters().rx_wire_bytes);
  EXPECT_EQ(b.counters().rx_wire_bytes, a.counters().tx_wire_bytes);
}

TEST(TransportBatchingTest, LoneMessageGoesOutUnwrapped) {
  BatchingFixture f;
  SinkHost a(&f.sim, f.costs);
  SinkHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);

  f.sim.At(0, [&]() { a.Send(b.id(), SmallRequest(a.id(), 1)); });
  f.sim.RunToCompletion();

  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_NE(dynamic_cast<const RpcRequest*>(b.received[0].msg.get()), nullptr);
  EXPECT_EQ(a.counters().tx_batches, 0u);
  EXPECT_EQ(b.counters().rx_batches, 0u);
}

TEST(TransportBatchingTest, LargeMessagesBypassTheQueue) {
  BatchingFixture f;
  SinkHost a(&f.sim, f.costs);
  SinkHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);

  f.sim.At(0, [&]() {
    a.Send(b.id(), SmallRequest(a.id(), 1, f.costs.tx_batch_small_bytes + 1));
    a.Send(b.id(), SmallRequest(a.id(), 2, f.costs.tx_batch_small_bytes + 1));
  });
  f.sim.RunToCompletion();

  EXPECT_EQ(b.received.size(), 2u);
  EXPECT_EQ(a.counters().tx_batches, 0u);
  EXPECT_EQ(a.counters().tx_physical_frames, 2u);
}

// Regression: an unbatched (large) message must not overtake small messages
// already coalescing toward the same destination — it flushes them first, so
// per-destination delivery order stays FIFO even with a long doorbell.
TEST(TransportBatchingTest, UnbatchedSendFlushesQueuedSmallMessagesFirst) {
  BatchingFixture f;
  f.costs.tx_batch_delay_ns = Micros(50);  // the flush must come from the large send
  SinkHost a(&f.sim, f.costs);
  SinkHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);

  f.sim.At(0, [&]() {
    a.Send(b.id(), SmallRequest(a.id(), 1));
    a.Send(b.id(), SmallRequest(a.id(), 2));
    a.Send(b.id(), SmallRequest(a.id(), 3, f.costs.tx_batch_small_bytes + 1));
  });
  f.sim.RunToCompletion();

  ASSERT_EQ(b.received.size(), 3u);
  for (size_t i = 0; i < b.received.size(); ++i) {
    const auto* req = dynamic_cast<const RpcRequest*>(b.received[i].msg.get());
    ASSERT_NE(req, nullptr);
    EXPECT_EQ(req->rid().seq, i + 1);
  }
  // Two physical frames: the flushed two-message batch, then the large one —
  // both well before the doorbell would have fired.
  EXPECT_EQ(a.counters().tx_batches, 1u);
  EXPECT_EQ(a.counters().tx_physical_frames, 2u);
  EXPECT_LT(b.received.back().at, Micros(50));
}

TEST(TransportBatchingTest, FullBatchFlushesWithoutWaiting) {
  BatchingFixture f;
  f.costs.tx_batch_delay_ns = Micros(50);  // long doorbell to prove the cap flushes
  SinkHost a(&f.sim, f.costs);
  SinkHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);

  const int32_t cap = f.costs.tx_batch_max_msgs;
  f.sim.At(0, [&]() {
    for (int32_t i = 0; i < cap; ++i) {
      a.Send(b.id(), SmallRequest(a.id(), static_cast<uint64_t>(i) + 1));
    }
  });
  f.sim.RunToCompletion();

  ASSERT_EQ(b.received.size(), static_cast<size_t>(cap));
  EXPECT_EQ(a.counters().tx_batches, 1u);
  // The cap flushed at enqueue time, not at the doorbell: delivery happens
  // well before the 50us doorbell would have fired.
  EXPECT_LT(b.received.back().at, Micros(50));
}

TEST(TransportBatchingTest, MtuOverflowSplitsTheBatch) {
  BatchingFixture f;
  SinkHost a(&f.sim, f.costs);
  SinkHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);

  // Four 500B messages: 504B slots against a 1436B MTU payload -> two frames.
  f.sim.At(0, [&]() {
    for (uint64_t i = 0; i < 4; ++i) {
      a.Send(b.id(), SmallRequest(a.id(), i + 1, 500));
    }
  });
  f.sim.RunToCompletion();

  EXPECT_EQ(b.received.size(), 4u);
  EXPECT_EQ(a.counters().tx_physical_frames, 2u);
  EXPECT_EQ(a.counters().tx_batches, 2u);
}

TEST(TransportBatchingTest, DropFilterMatchesMembersNotFrames) {
  BatchingFixture f;
  SinkHost a(&f.sim, f.costs);
  SinkHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);
  // Drop FEEDBACK only; the surrounding batch must still deliver the rest.
  f.net.set_drop_filter([](const Packet& p, HostId) {
    return std::string(p.msg->Name()) == "FEEDBACK";
  });

  f.sim.At(0, [&]() {
    a.Send(b.id(), SmallRequest(a.id(), 1));
    a.Send(b.id(), std::make_shared<FeedbackMsg>(RequestId{a.id(), 1}));
    a.Send(b.id(), SmallRequest(a.id(), 2));
  });
  f.sim.RunToCompletion();

  ASSERT_EQ(b.received.size(), 2u);
  for (const auto& r : b.received) {
    EXPECT_STREQ(r.msg->Name(), "REQUEST");
  }
  EXPECT_EQ(f.net.dropped_msgs(), 1u);
  EXPECT_EQ(f.net.delivered_msgs(), 2u);
}

TEST(TransportBatchingTest, FailedHostDiscardsQueuedMessages) {
  BatchingFixture f;
  f.costs.tx_batch_delay_ns = Micros(10);
  SinkHost a(&f.sim, f.costs);
  SinkHost b(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);

  f.sim.At(0, [&]() {
    a.Send(b.id(), SmallRequest(a.id(), 1));
    a.set_failed(true);  // crash before the doorbell fires
  });
  f.sim.RunToCompletion();

  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(a.counters().tx_physical_frames, 0u);
}

TEST(TransportBatchingTest, MulticastBatchFansOut) {
  BatchingFixture f;
  SinkHost a(&f.sim, f.costs);
  SinkHost b(&f.sim, f.costs);
  SinkHost c(&f.sim, f.costs);
  f.net.Attach(&a);
  f.net.Attach(&b);
  f.net.Attach(&c);
  const Addr group = f.net.CreateMulticastGroup({a.id(), b.id(), c.id()});

  f.sim.At(0, [&]() {
    a.Send(group, SmallRequest(a.id(), 1));
    a.Send(group, SmallRequest(a.id(), 2));
  });
  f.sim.RunToCompletion();

  EXPECT_EQ(b.received.size(), 2u);
  EXPECT_EQ(c.received.size(), 2u);
  EXPECT_TRUE(a.received.empty());
  EXPECT_EQ(a.counters().tx_batches, 1u);
  EXPECT_EQ(f.net.delivered_msgs(), 4u);  // 2 logical x 2 destinations
}

// --- verdict equivalence under chaos ---------------------------------------
// Batching is a transport optimization: for any pinned seed, the batched and
// unbatched runs must reach the same verdict — linearizability, convergence,
// watchdog silence, and exactly-once accounting. (Event interleavings differ,
// so raw message counts may too; verdicts may not.)

struct Verdict {
  bool ok;
  bool linearizable;
  bool conclusive;
  bool leader_alive;
  bool digests_converged;
  bool watchdog_ok;
  uint64_t double_applies;
};

Verdict VerdictOf(const ChaosRunResult& r) {
  return Verdict{r.ok(),
                 r.linearizability.linearizable,
                 r.linearizability.conclusive(),
                 r.leader_alive,
                 r.digests_converged,
                 r.watchdog_ok,
                 r.double_applies};
}

TEST(TransportBatchingTest, ChaosVerdictsAreBatchingInvariant) {
  const std::vector<std::string> schedules = {"partition-leader", "crash-leader", "reorder"};
  uint64_t seed = 7101;
  for (const std::string& schedule : schedules) {
    ChaosRunConfig config;
    config.mode = ClusterMode::kHovercRaft;
    config.schedule = schedule;
    config.seed = seed++;
    config.retry_enabled = true;

    ChaosRunConfig batched = config;
    batched.tx_batching = true;
    batched.tx_batch_delay_ns = 2'000;

    const ChaosRunResult base = RunChaosSchedule(config);
    const ChaosRunResult with_batching = RunChaosSchedule(batched);
    const Verdict a = VerdictOf(base);
    const Verdict b = VerdictOf(with_batching);

    EXPECT_TRUE(a.ok) << schedule << " unbatched:\n" << base.Describe();
    EXPECT_TRUE(b.ok) << schedule << " batched:\n" << with_batching.Describe();
    EXPECT_EQ(a.linearizable, b.linearizable) << schedule;
    EXPECT_EQ(a.conclusive, b.conclusive) << schedule;
    EXPECT_EQ(a.leader_alive, b.leader_alive) << schedule;
    EXPECT_EQ(a.digests_converged, b.digests_converged) << schedule;
    EXPECT_EQ(a.watchdog_ok, b.watchdog_ok) << schedule;
    EXPECT_EQ(a.double_applies, 0u) << schedule;
    EXPECT_EQ(b.double_applies, 0u) << schedule;
  }
}

// A batched run is itself deterministic: the same pinned seed replays to an
// identical trace (node states, nemesis events, every counter), which pins
// the flush order — any nondeterminism in doorbell scheduling or queue
// iteration would diverge here.
TEST(TransportBatchingTest, BatchedRunsReplayIdentically) {
  ChaosRunConfig config;
  config.mode = ClusterMode::kHovercRaft;
  config.schedule = "random";
  config.seed = 4242;
  config.retry_enabled = true;
  config.tx_batching = true;
  config.tx_batch_delay_ns = 2'000;

  const ChaosRunResult first = RunChaosSchedule(config);
  const ChaosRunResult second = RunChaosSchedule(config);

  EXPECT_TRUE(first.ok()) << first.Describe();
  EXPECT_EQ(first.Describe(), second.Describe());
  EXPECT_EQ(first.invoked, second.invoked);
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.retransmits, second.retransmits);
  EXPECT_EQ(first.dropped_by_fault, second.dropped_by_fault);
  EXPECT_EQ(first.recorder_events, second.recorder_events);
}

}  // namespace
}  // namespace hovercraft
