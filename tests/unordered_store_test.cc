#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/unordered_store.h"

namespace hovercraft {
namespace {

std::shared_ptr<const RpcRequest> Req(HostId client, uint64_t seq) {
  return std::make_shared<RpcRequest>(RequestId{client, seq}, R2p2Policy::kReplicatedReq,
                                      MakeBody(std::vector<uint8_t>(24)));
}

TEST(UnorderedStoreTest, InsertLookupErase) {
  UnorderedStore store;
  EXPECT_TRUE(store.Insert(Req(1, 1), 0));
  EXPECT_EQ(store.size(), 1u);
  ASSERT_NE(store.Lookup(RequestId{1, 1}), nullptr);
  EXPECT_EQ(store.Lookup(RequestId{1, 2}), nullptr);
  EXPECT_TRUE(store.Erase(RequestId{1, 1}));
  EXPECT_FALSE(store.Erase(RequestId{1, 1}));
  EXPECT_TRUE(store.empty());
}

TEST(UnorderedStoreTest, DuplicateInsertRejected) {
  UnorderedStore store;
  EXPECT_TRUE(store.Insert(Req(1, 1), 0));
  EXPECT_FALSE(store.Insert(Req(1, 1), 5));
  EXPECT_EQ(store.size(), 1u);
}

TEST(UnorderedStoreTest, GarbageCollectByAge) {
  UnorderedStore store;
  store.Insert(Req(1, 1), 0);
  store.Insert(Req(1, 2), Millis(10));
  store.Insert(Req(1, 3), Millis(20));
  // TTL 15ms at t=20ms: only the first entry is old enough.
  EXPECT_EQ(store.GarbageCollect(Millis(20), Millis(15)), 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.Lookup(RequestId{1, 1}), nullptr);
  EXPECT_NE(store.Lookup(RequestId{1, 2}), nullptr);
  // Much later everything goes.
  EXPECT_EQ(store.GarbageCollect(Millis(100), Millis(15)), 2u);
  EXPECT_TRUE(store.empty());
}

TEST(UnorderedStoreTest, GcSkipsYoungAfterEraseInMiddle) {
  UnorderedStore store;
  store.Insert(Req(1, 1), 0);
  store.Insert(Req(1, 2), 0);
  store.Erase(RequestId{1, 1});
  EXPECT_EQ(store.GarbageCollect(Millis(100), Millis(15)), 1u);
  EXPECT_TRUE(store.empty());
}

TEST(UnorderedStoreTest, DrainPreservesInsertionOrder) {
  UnorderedStore store;
  store.Insert(Req(1, 3), 0);
  store.Insert(Req(1, 1), 1);
  store.Insert(Req(1, 2), 2);
  std::vector<uint64_t> order;
  store.Drain([&](std::shared_ptr<const RpcRequest> r) { order.push_back(r->rid().seq); });
  EXPECT_EQ(order, (std::vector<uint64_t>{3, 1, 2}));
  EXPECT_TRUE(store.empty());
}

TEST(UnorderedStoreTest, DrainToleratesReentrantInsert) {
  UnorderedStore store;
  store.Insert(Req(1, 1), 0);
  store.Drain([&](std::shared_ptr<const RpcRequest>) {
    // A drained request being resubmitted can race with new arrivals.
    store.Insert(Req(2, 9), 5);
  });
  EXPECT_EQ(store.size(), 1u);
  EXPECT_NE(store.Lookup(RequestId{2, 9}), nullptr);
}

}  // namespace
}  // namespace hovercraft
