// WAL recovery fuzz: cut the byte stream at every record boundary and at
// every mid-record position band, flip bytes at seeded offsets, and check
// that replay always reconstructs exactly the synced prefix — idempotently
// and byte-deterministically (docs/durability.md).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"
#include "src/sim/simulator.h"
#include "src/storage/fsync_policy.h"
#include "src/storage/sim_disk.h"
#include "src/storage/stable_storage.h"

namespace hovercraft {
namespace {

std::vector<uint8_t> Payload(uint64_t tag) {
  std::vector<uint8_t> p(16);
  for (size_t i = 0; i < p.size(); ++i) {
    p[i] = static_cast<uint8_t>(tag * 31 + i);
  }
  return p;
}

// Builds a single-segment WAL of `n` synced entries and returns the disk
// image of that segment so callers can cut or corrupt it precisely.
struct WalImage {
  Simulator sim;
  SimDisk disk{&sim, 1, 0};
  StableStorage storage{&disk, FsyncPolicy::kGroupCommit};
  std::string segment;

  explicit WalImage(int n) {
    storage.PersistHardState(1, kInvalidNode);
    for (LogIndex i = 1; i <= static_cast<LogIndex>(n); ++i) {
      storage.AppendEntry(i, 1, /*replier=*/0, Payload(i));
    }
    storage.Sync(nullptr);
    const std::vector<std::string> files = disk.List("wal-");
    EXPECT_EQ(files.size(), 1u);
    segment = files.front();
  }
};

// Record boundaries of a segment, from the framing alone.
std::vector<size_t> RecordBoundaries(const std::vector<uint8_t>& bytes) {
  std::vector<size_t> cuts = {0};
  size_t off = 0;
  while (off + 13 <= bytes.size()) {
    const uint32_t len = static_cast<uint32_t>(bytes[off]) |
                         static_cast<uint32_t>(bytes[off + 1]) << 8 |
                         static_cast<uint32_t>(bytes[off + 2]) << 16 |
                         static_cast<uint32_t>(bytes[off + 3]) << 24;
    off += 13 + len;
    if (off > bytes.size()) {
      break;
    }
    cuts.push_back(off);
  }
  return cuts;
}

TEST(WalFuzzTest, CrashAtEveryRecordBoundaryYieldsExactPrefix) {
  const int kEntries = 12;
  WalImage ref(kEntries);
  const std::vector<uint8_t> image = ref.disk.Read(ref.segment);
  const std::vector<size_t> cuts = RecordBoundaries(image);
  // hard-state record + kEntries entry records
  ASSERT_EQ(cuts.size(), static_cast<size_t>(kEntries) + 2);

  for (size_t ci = 0; ci < cuts.size(); ++ci) {
    Simulator sim;
    SimDisk disk(&sim, 1, 0);
    StableStorage storage(&disk, FsyncPolicy::kGroupCommit);
    std::vector<uint8_t> cut(image.begin(), image.begin() + static_cast<ptrdiff_t>(cuts[ci]));
    disk.WriteAndSync(ref.segment, cut);

    StableStorage::Recovery rec = storage.Recover(/*protocol_aware=*/true);
    // Boundary ci keeps the hard-state record (boundary 1+) and ci-1 entries.
    const size_t want = ci <= 1 ? 0 : ci - 1;
    ASSERT_EQ(rec.entries.size(), want) << "cut at boundary " << ci;
    for (size_t i = 0; i < want; ++i) {
      EXPECT_EQ(rec.entries[i].idx, i + 1);
      EXPECT_EQ(rec.entries[i].payload, Payload(i + 1));
    }
    EXPECT_FALSE(rec.suspect);  // a clean cut at the tail is never suspect
    EXPECT_EQ(rec.term, ci >= 1 ? 1u : 0u);
  }
}

TEST(WalFuzzTest, CrashMidRecordTruncatesTornTail) {
  const int kEntries = 6;
  WalImage ref(kEntries);
  const std::vector<uint8_t> image = ref.disk.Read(ref.segment);
  const std::vector<size_t> cuts = RecordBoundaries(image);

  // Cut one byte into every record, and one byte before every record's end.
  std::vector<size_t> probes;
  for (size_t ci = 0; ci + 1 < cuts.size(); ++ci) {
    probes.push_back(cuts[ci] + 1);
    probes.push_back(cuts[ci + 1] - 1);
  }
  for (size_t cut_at : probes) {
    Simulator sim;
    SimDisk disk(&sim, 1, 0);
    StableStorage storage(&disk, FsyncPolicy::kGroupCommit);
    std::vector<uint8_t> cut(image.begin(), image.begin() + static_cast<ptrdiff_t>(cut_at));
    disk.WriteAndSync(ref.segment, cut);

    StableStorage::Recovery rec = storage.Recover(true);
    // The torn record is truncated; everything before the containing record
    // boundary survives intact.
    size_t boundary = 0;
    for (size_t c : cuts) {
      if (c <= cut_at) {
        boundary = c;
      }
    }
    size_t want = 0;
    for (size_t ci = 0; ci + 1 < cuts.size(); ++ci) {
      if (cuts[ci + 1] <= boundary && ci >= 1) {
        want = ci;
      }
    }
    ASSERT_EQ(rec.entries.size(), want) << "cut at offset " << cut_at;
    EXPECT_FALSE(rec.suspect);
    EXPECT_EQ(storage.stats().torn_truncations, 1u);
    // Idempotence: recovering the truncated image again changes nothing.
    StableStorage::Recovery again = storage.Recover(true);
    EXPECT_EQ(again.entries.size(), rec.entries.size());
    EXPECT_EQ(storage.stats().torn_truncations, 1u);
  }
}

TEST(WalFuzzTest, BitFlipsNeverYieldWrongEntriesOnlyMissingOnes) {
  const int kEntries = 8;
  WalImage ref(kEntries);
  const std::vector<uint8_t> image = ref.disk.Read(ref.segment);

  // A flip inside the *final* record's length field turns it into a framing
  // break at the physical end of the WAL — indistinguishable, by content
  // alone, from a torn write of that same record. Recovery must classify it
  // as torn (or every real torn tail would strand the node suspect), so the
  // suspect expectation below exempts those four bytes.
  const std::vector<size_t> cuts = RecordBoundaries(image);
  ASSERT_GE(cuts.size(), 2u);
  const size_t last_record = cuts[cuts.size() - 2];

  Rng rng(0xF1F1F1F1);
  for (int trial = 0; trial < 200; ++trial) {
    Simulator sim;
    SimDisk disk(&sim, 1, 0);
    StableStorage storage(&disk, FsyncPolicy::kGroupCommit);
    disk.WriteAndSync(ref.segment, image);
    const size_t offset = rng.NextBelow(image.size());
    const bool tail_len_flip = offset >= last_record && offset < last_record + 4;
    ASSERT_TRUE(disk.FlipByte(ref.segment, offset));

    StableStorage::Recovery rec = storage.Recover(true);
    // Whatever was damaged, replay must never invent or mangle an entry:
    // every recovered entry is bit-exact, contiguous from the base.
    LogIndex expect_idx = 1;
    for (const auto& e : rec.entries) {
      EXPECT_EQ(e.idx, expect_idx++);
      EXPECT_EQ(e.term, 1u);
      EXPECT_EQ(e.payload, Payload(e.idx));
    }
    // A flip that removed entries must raise the suspect flag — unless it hit
    // the hard-state record head of the WAL, which carries no entries (the
    // stream break after it still counts as damage and is flagged).
    if (rec.entries.size() < static_cast<size_t>(kEntries) && !tail_len_flip) {
      EXPECT_TRUE(rec.suspect) << "flip at " << offset << " lost entries silently";
      EXPECT_GE(rec.suspect_floor, static_cast<LogIndex>(kEntries))
          << "flip at " << offset;
    }
  }
}

TEST(WalFuzzTest, RecoveryIsByteDeterministic) {
  // Two storages driven through an identical append/truncate/compact/crash
  // history end with byte-identical disk images, and recovery of each yields
  // identical results.
  auto drive = [](SimDisk* disk) {
    StableStorage storage(disk, FsyncPolicy::kGroupCommit, /*segment_bytes=*/512);
    storage.PersistHardState(1, 2);
    for (LogIndex i = 1; i <= 30; ++i) {
      storage.AppendEntry(i, 1, 0, Payload(i));
    }
    storage.AppendTruncate(28);
    storage.AppendEntry(28, 2, 1, Payload(91));
    storage.AppendCompact(10, 1);
    storage.Sync(nullptr);
    storage.AppendEntry(29, 2, 1, Payload(92));  // unsynced: dies in the crash
    storage.Crash();
    StableStorage::Recovery rec = storage.Recover(true);
    return rec;
  };

  Simulator sim;
  SimDisk a(&sim, 1, 0);
  SimDisk b(&sim, 1, 0);
  StableStorage::Recovery ra = drive(&a);
  StableStorage::Recovery rb = drive(&b);

  ASSERT_EQ(a.List("wal-"), b.List("wal-"));
  for (const std::string& f : a.List("wal-")) {
    EXPECT_EQ(a.Read(f), b.Read(f)) << f;
  }
  ASSERT_EQ(ra.entries.size(), rb.entries.size());
  EXPECT_EQ(ra.base_index, rb.base_index);
  EXPECT_EQ(ra.term, rb.term);
  EXPECT_EQ(ra.voted_for, rb.voted_for);
  for (size_t i = 0; i < ra.entries.size(); ++i) {
    EXPECT_EQ(ra.entries[i].idx, rb.entries[i].idx);
    EXPECT_EQ(ra.entries[i].payload, rb.entries[i].payload);
  }
  // And the recovered tail is exactly the synced prefix: 11..28.
  ASSERT_FALSE(ra.entries.empty());
  EXPECT_EQ(ra.entries.front().idx, 11u);
  EXPECT_EQ(ra.entries.back().idx, 28u);
  EXPECT_EQ(ra.entries.back().payload, Payload(91));
  EXPECT_FALSE(ra.suspect);
}

}  // namespace
}  // namespace hovercraft
