// Mutation tests for the obs v2 stack (flight recorder + watchdog +
// critical-path analyzer). Each safety invariant the watchdog asserts is
// deliberately violated by seeding the recorder with a poisoned event
// sequence, and the test requires the correct violation code and a non-empty
// dump; the clean-path tests require total silence (zero violations) on
// legitimate sequences and on full chaos runs, and identical chaos outcomes
// with the recorder on and off (the zero-perturbation contract).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/chaos/runner.h"
#include "src/obs/critical_path.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/watchdog.h"

namespace hovercraft {
namespace obs {
namespace {

// A recorder with the watchdog attached, the same wiring the cluster and the
// chaos runner install.
struct Rig {
  FlightRecorder fr{64};
  Watchdog wd{&fr};
  Rig() { fr.AddSink(&wd); }

  std::string Dump() {
    std::ostringstream out;
    fr.WriteDump(out);
    return out.str();
  }

  void ExpectViolation(WatchdogCode code) {
    ASSERT_GE(wd.violations_total(), 1u) << wd.Summary();
    EXPECT_EQ(wd.violations()[0].code, code) << wd.Summary();
    const std::string dump = Dump();
    EXPECT_FALSE(dump.empty());
    // The watchdog records its detection into the same ring it watches, so
    // the dump always ends with the violation marker.
    EXPECT_NE(dump.find("\"violation\""), std::string::npos);
  }
};

constexpr auto kLeader = static_cast<uint64_t>(FrRole::kLeader);
constexpr auto kCandidate = static_cast<uint64_t>(FrRole::kCandidate);

TEST(WatchdogMutationTest, DualLeaderSameTerm) {
  Rig rig;
  rig.fr.Record(100, 0, FrType::kRole, 5, kLeader);
  rig.fr.Record(200, 1, FrType::kRole, 5, kLeader);
  rig.ExpectViolation(WatchdogCode::kDualLeader);
}

TEST(WatchdogMutationTest, DistinctTermsAreNotDualLeadership) {
  Rig rig;
  rig.fr.Record(100, 0, FrType::kRole, 5, kLeader);
  rig.fr.Record(200, 1, FrType::kRole, 6, kLeader);
  rig.fr.Record(300, 0, FrType::kRole, 7, kLeader);  // re-election of node 0
  EXPECT_TRUE(rig.wd.ok()) << rig.wd.Summary();
}

TEST(WatchdogMutationTest, CommitMovingBackwards) {
  Rig rig;
  rig.fr.Record(100, 0, FrType::kCommit, 10, 1);
  rig.fr.Record(200, 0, FrType::kCommit, 5, 1);
  rig.ExpectViolation(WatchdogCode::kCommitRegression);
}

TEST(WatchdogMutationTest, CommittedEntriesOverwritten) {
  Rig rig;
  rig.fr.Record(100, 0, FrType::kCommitLoss, 5, 10);
  rig.ExpectViolation(WatchdogCode::kCommitRegression);
}

TEST(WatchdogMutationTest, RestartResetsTheCommitFloor) {
  Rig rig;
  rig.fr.Record(100, 0, FrType::kCommit, 10, 1);
  rig.fr.Record(200, 0, FrType::kRecovery, static_cast<uint64_t>(FrRecovery::kRestart), 3);
  rig.fr.Record(300, 0, FrType::kCommit, 3, 1);  // re-advancing from the WAL baseline
  EXPECT_TRUE(rig.wd.ok()) << rig.wd.Summary();
}

TEST(WatchdogMutationTest, LogDivergenceAtCommit) {
  Rig rig;
  rig.fr.Record(100, 0, FrType::kCommit, 7, 2);
  rig.fr.Record(200, 1, FrType::kCommit, 7, 3);  // same index, different entry term
  rig.ExpectViolation(WatchdogCode::kLogDivergence);
}

TEST(WatchdogMutationTest, DurableIndexRegression) {
  Rig rig;
  rig.fr.Record(100, 0, FrType::kDurable, 100, 0);
  rig.fr.Record(200, 0, FrType::kDurable, 90, 0);  // same restart epoch
  rig.ExpectViolation(WatchdogCode::kDurableRegression);
}

TEST(WatchdogMutationTest, TruncationLegitimatelyLowersDurable) {
  Rig rig;
  rig.fr.Record(100, 0, FrType::kDurable, 100, 0);
  rig.fr.Record(200, 0, FrType::kRecovery, static_cast<uint64_t>(FrRecovery::kTruncate), 90);
  rig.fr.Record(300, 0, FrType::kDurable, 90, 0);  // conflicting suffix cut
  EXPECT_TRUE(rig.wd.ok()) << rig.wd.Summary();
}

TEST(WatchdogMutationTest, StaleReadGrantBelowCommitWatermark) {
  Rig rig;
  rig.fr.Record(100, 0, FrType::kCommit, 50, 1);
  rig.fr.Record(200, 1, FrType::kLeaseGrant, 49, 1);  // deposed leader still serving
  rig.ExpectViolation(WatchdogCode::kStaleReadGrant);
}

TEST(WatchdogMutationTest, GrantAtTheWatermarkIsClean) {
  Rig rig;
  rig.fr.Record(100, 0, FrType::kCommit, 50, 1);
  rig.fr.Record(200, 0, FrType::kLeaseGrant, 50, 1);
  EXPECT_TRUE(rig.wd.ok()) << rig.wd.Summary();
}

TEST(WatchdogMutationTest, DoubleApplyWithDedupBypassed) {
  Rig rig;
  rig.fr.Record(100, 0, FrType::kApply, 42, 7, 1);  // c=1: session table bypassed
  rig.ExpectViolation(WatchdogCode::kDoubleApply);
}

TEST(WatchdogMutationTest, FlowControlSlotLeak) {
  Rig rig;
  rig.fr.Record(100, kInvalidNode, FrType::kFlow, 1'000'000, 1,
                static_cast<uint32_t>(FrFlowOp::kClose));
  rig.ExpectViolation(WatchdogCode::kFlowImbalance);
}

TEST(WatchdogMutationTest, BalancedFlowLedgerIsClean) {
  Rig rig;
  rig.fr.Record(100, kInvalidNode, FrType::kFlow, 1, 128,
                static_cast<uint32_t>(FrFlowOp::kOpen));
  rig.fr.Record(200, kInvalidNode, FrType::kFlow, 2, 128,
                static_cast<uint32_t>(FrFlowOp::kOpen));
  rig.fr.Record(300, kInvalidNode, FrType::kFlow, 1, 128,
                static_cast<uint32_t>(FrFlowOp::kClose));
  EXPECT_TRUE(rig.wd.ok()) << rig.wd.Summary();
}

TEST(WatchdogMutationTest, SuspectNodeCampaigning) {
  Rig rig;
  rig.fr.Record(100, 2, FrType::kRole, 9, kCandidate, 1);  // c=1: recovery-suspect
  rig.ExpectViolation(WatchdogCode::kSuspectCampaign);
}

// ---------------------------------------------------------------------------
// Chaos integration: injections fire end to end, clean runs stay silent, and
// the recorder does not perturb the run it records.

ChaosRunConfig BaseConfig(ClusterMode mode, const std::string& schedule, uint64_t seed) {
  ChaosRunConfig config;
  config.mode = mode;
  config.schedule = schedule;
  config.seed = seed;
  return config;
}

TEST(WatchdogChaosTest, InjectedViolationsFireWithDumps) {
  const struct {
    const char* inject;
    const char* code;
  } kCases[] = {
      {"dual-leader", "dual_leader"},
      {"commit-regression", "commit_regression"},
      {"lease-overlap", "stale_read_grant"},
      {"double-apply", "double_apply"},
      {"flow-leak", "flow_imbalance"},
  };
  for (const auto& c : kCases) {
    SCOPED_TRACE(c.inject);
    ChaosRunConfig config = BaseConfig(ClusterMode::kHovercRaft, "none", 7);
    config.inject_violation = c.inject;
    config.dump_path = testing::TempDir() + "fr_dump_" + c.code + ".json";
    std::remove(config.dump_path.c_str());
    const ChaosRunResult result = RunChaosSchedule(config);
    EXPECT_FALSE(result.watchdog_ok);
    EXPECT_GE(result.watchdog_violations, 1u);
    EXPECT_NE(result.watchdog_summary.find(c.code), std::string::npos)
        << result.watchdog_summary;
    EXPECT_FALSE(result.ok());
    std::ifstream dump(config.dump_path);
    ASSERT_TRUE(dump.good()) << "no dump at " << config.dump_path;
    std::stringstream content;
    content << dump.rdbuf();
    EXPECT_NE(content.str().find("\"violation\""), std::string::npos);
  }
}

TEST(WatchdogChaosTest, CleanChaosRunIsSilent) {
  const ChaosRunResult result =
      RunChaosSchedule(BaseConfig(ClusterMode::kHovercRaftPP, "flap", 3));
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.watchdog_ok);
  EXPECT_EQ(result.watchdog_violations, 0u);
  EXPECT_GT(result.watchdog_events, 0u);
  EXPECT_GT(result.watchdog_checks, 0u);
  EXPECT_GT(result.recorder_events, 0u);
  EXPECT_EQ(result.watchdog_summary.rfind("invariants=", 0), 0u)
      << result.watchdog_summary;
}

TEST(WatchdogChaosTest, RecorderAndWatchdogDoNotPerturbTheRun) {
  ChaosRunConfig on = BaseConfig(ClusterMode::kHovercRaft, "random", 11);
  ChaosRunConfig off = on;
  off.flight_recorder_depth = 0;  // recorder (and therefore watchdog) absent
  const ChaosRunResult a = RunChaosSchedule(on);
  const ChaosRunResult b = RunChaosSchedule(off);
  EXPECT_GT(a.recorder_events, 0u);
  EXPECT_EQ(b.recorder_events, 0u);
  EXPECT_EQ(b.watchdog_summary, "off");
  // The observed run must be byte-for-byte the same simulation.
  EXPECT_EQ(a.leader_alive, b.leader_alive);
  EXPECT_EQ(a.digests_converged, b.digests_converged);
  EXPECT_EQ(a.linearizability.linearizable, b.linearizability.linearizable);
  EXPECT_EQ(a.final_members, b.final_members);
  EXPECT_EQ(a.final_config_idx, b.final_config_idx);
  EXPECT_EQ(a.invoked, b.invoked);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.nacked, b.nacked);
  EXPECT_EQ(a.dropped_by_fault, b.dropped_by_fault);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.dedup_hits, b.dedup_hits);
  EXPECT_EQ(a.double_applies, b.double_applies);
  EXPECT_EQ(a.entries_appended, b.entries_appended);
  EXPECT_EQ(a.max_term, b.max_term);
}

// ---------------------------------------------------------------------------
// Critical-path analyzer: blame must telescope exactly to end-to-end latency.

TEST(CriticalPathTest, BlameTelescopesToEndToEnd) {
  FlightRecorder fr(1024);
  CriticalPath cp;
  fr.AddSink(&cp);
  auto mark = [&](uint64_t seq, Stage stage, TimeNs ts) {
    fr.Record(ts, 0, FrType::kStage, /*client=*/1, seq, static_cast<uint32_t>(stage));
  };
  // 100 requests with a linearly growing end-to-end latency; stages split
  // the path 30% to commit, 50% to apply, 20% to the reply leg.
  constexpr int kRequests = 100;
  for (int i = 0; i < kRequests; ++i) {
    const TimeNs start = 10'000 * i;
    const TimeNs e2e = 1'000 + 10 * i;
    mark(i, Stage::kClientSend, start);
    mark(i, Stage::kCommitted, start + (e2e * 3) / 10);
    mark(i, Stage::kApplyEnd, start + (e2e * 8) / 10);
    mark(i, Stage::kComplete, start + e2e);
  }
  EXPECT_EQ(cp.completed(), static_cast<size_t>(kRequests));
  const auto rows = cp.Attribution();
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    double sum = 0;
    for (double blame : row.blame_ns) sum += blame;
    EXPECT_NEAR(sum, row.e2e_ns, 1e-6) << row.population;
    EXPECT_GT(row.count, 0u);
  }
  EXPECT_LT(cp.MaxSumError(), 1e-9);
  // Nearest-rank p50 of 1000..1990 step 10: rank round(0.5 * 99) = 50.
  EXPECT_EQ(rows[0].percentile_ns, 1'500);
}

TEST(CriticalPathTest, NackedRequestsAreExcluded) {
  FlightRecorder fr(64);
  CriticalPath cp;
  fr.AddSink(&cp);
  fr.Record(100, 0, FrType::kStage, 1, 1, static_cast<uint32_t>(Stage::kClientSend));
  fr.Record(200, 0, FrType::kStage, 1, 1, static_cast<uint32_t>(Stage::kNacked));
  fr.Record(300, 0, FrType::kStage, 1, 2, static_cast<uint32_t>(Stage::kClientSend));
  fr.Record(900, 0, FrType::kStage, 1, 2, static_cast<uint32_t>(Stage::kComplete));
  EXPECT_EQ(cp.completed(), 1u);
  EXPECT_LT(cp.MaxSumError(), 1e-9);
}

}  // namespace
}  // namespace obs
}  // namespace hovercraft
