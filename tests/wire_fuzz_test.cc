// Wire-path fuzzing: adversarial packet streams — truncated, duplicated,
// reordered, bit-flipped, cross-spliced and pure-garbage frames — driven
// through Fragment -> Reassembler -> DecodeR2p2Message. The properties:
//
//  1. no crash / no UB (the CI sanitizer job runs this under asan+ubsan);
//  2. every Feed returns cleanly (ok or a typed error, never a CHECK);
//  3. anything that *does* decode is a well-formed message: re-serializing
//     and re-decoding it is a fixed point (payload bits are not checksummed
//     on this wire, so flipped body bytes may legally survive — but a
//     mutated stream must never produce a structurally broken message);
//  4. the buffer pool balances to zero outstanding buffers at teardown.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/r2p2/serdes.h"

namespace hovercraft {
namespace {

constexpr size_t kMtu = 1436;

std::vector<uint8_t> PatternBytes(size_t n, uint8_t salt) {
  std::vector<uint8_t> bytes(n);
  for (size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<uint8_t>(i * 31 + salt);
  }
  return bytes;
}

// Serialize a random message into legacy wire packets.
std::vector<WirePacket> RandomMessagePackets(Rng& rng) {
  const uint64_t seq = rng.NextBelow(1u << 20);
  const HostId client = static_cast<HostId>(rng.NextBelow(64));
  const size_t body_len = rng.NextBelow(6000);
  if (rng.NextBelow(2) == 0) {
    RpcRequest req(RequestId{client, seq},
                   static_cast<R2p2Policy>(rng.NextBelow(3)),
                   MakeBody(PatternBytes(body_len, static_cast<uint8_t>(seq))),
                   /*attempt=*/static_cast<uint32_t>(1 + rng.NextBelow(4)),
                   /*ack_watermark=*/rng.NextBelow(1u << 30));
    return SerializeRequest(req, kMtu);
  }
  RpcResponse resp(RequestId{client, seq},
                   MakeBody(PatternBytes(body_len, static_cast<uint8_t>(seq + 1))));
  return SerializeResponse(resp, kMtu);
}

// Mutate a packet stream in place: truncate / duplicate / drop / bit-flip /
// shuffle, several rounds.
void Mutate(std::vector<WirePacket>& packets, Rng& rng) {
  const size_t rounds = 1 + rng.NextBelow(4);
  for (size_t r = 0; r < rounds && !packets.empty(); ++r) {
    const size_t which = rng.NextBelow(packets.size());
    switch (rng.NextBelow(5)) {
      case 0: {  // truncate (possibly below the header size)
        WirePacket& p = packets[which];
        p.resize(rng.NextBelow(p.size() + 1));
        break;
      }
      case 1:  // duplicate
        packets.push_back(packets[which]);
        break;
      case 2:  // drop
        packets.erase(packets.begin() + static_cast<ptrdiff_t>(which));
        break;
      case 3: {  // bit-flip
        WirePacket& p = packets[which];
        if (!p.empty()) {
          const size_t byte = rng.NextBelow(p.size());
          p[byte] ^= static_cast<uint8_t>(1u << rng.NextBelow(8));
        }
        break;
      }
      default: {  // swap two packets (reorder)
        const size_t other = rng.NextBelow(packets.size());
        std::swap(packets[which], packets[other]);
        break;
      }
    }
  }
}

// Round-trip stability: a decoded message re-serializes and re-decodes to an
// identical message (property 3).
void ExpectRoundTripStable(BufPool& pool, const DecodedR2p2Message& decoded) {
  std::vector<WirePacket> packets;
  if (decoded.type == WireType::kRequest && decoded.request != nullptr) {
    packets = SerializeRequest(*decoded.request, kMtu);
  } else if (decoded.type == WireType::kResponse && decoded.response != nullptr) {
    packets = SerializeResponse(*decoded.response, kMtu);
  } else {
    return;  // FEEDBACK/NACK carry identity only; nothing more to check
  }
  Reassembler reassembler(&pool);
  bool completed = false;
  for (const WirePacket& p : packets) {
    Result<bool> fed = reassembler.Feed(p, 0);
    ASSERT_TRUE(fed.ok()) << "re-encoded message failed to reassemble";
    completed = fed.value();
  }
  ASSERT_TRUE(completed);
  Result<DecodedR2p2Message> again = DecodeR2p2Message(reassembler.TakeCompleted());
  ASSERT_TRUE(again.ok()) << "re-encoded message failed to decode";
  ASSERT_EQ(again.value().type, decoded.type);
  ASSERT_EQ(again.value().rid, decoded.rid);
  if (decoded.type == WireType::kRequest) {
    ASSERT_EQ(again.value().request->policy(), decoded.request->policy());
    ASSERT_EQ(again.value().request->attempt(), decoded.request->attempt());
    ASSERT_EQ(again.value().request->ack_watermark(), decoded.request->ack_watermark());
    ASSERT_EQ(*again.value().request->body(), *decoded.request->body());
  } else {
    ASSERT_EQ(*again.value().response->body(), *decoded.response->body());
  }
}

TEST(WireFuzzTest, MutatedStreamsNeverBreakTheReassembler) {
  BufPool pool;
  uint64_t fed = 0, completed = 0, decode_ok = 0, decode_err = 0, feed_err = 0;
  for (uint64_t seed = 1; seed <= 400; ++seed) {
    Rng rng(0xF00D0000 + seed);
    Reassembler reassembler(&pool);

    // One or two messages' packets, mutated, possibly interleaved (fragments
    // of different messages cross-talking through the same reassembler).
    std::vector<WirePacket> packets = RandomMessagePackets(rng);
    if (rng.NextBelow(3) == 0) {
      std::vector<WirePacket> other = RandomMessagePackets(rng);
      packets.insert(packets.end(), other.begin(), other.end());
    }
    Mutate(packets, rng);

    for (const WirePacket& p : packets) {
      Result<bool> result = reassembler.Feed(p, static_cast<TimeNs>(fed));
      ++fed;
      if (!result.ok()) {
        ++feed_err;
        continue;
      }
      if (result.value()) {
        ++completed;
        Result<DecodedR2p2Message> decoded = DecodeR2p2Message(reassembler.TakeCompleted());
        if (decoded.ok()) {
          ++decode_ok;
          ExpectRoundTripStable(pool, decoded.value());
        } else {
          ++decode_err;
        }
      }
      // Exercise GC interleaved with feeding.
      if (fed % 97 == 0) {
        reassembler.GarbageCollect(static_cast<TimeNs>(fed), 10);
      }
    }
  }
  // The stream is adversarial but not pure noise: plenty of messages still
  // complete and decode, so the properties above were actually exercised.
  EXPECT_GT(fed, 1000u);
  EXPECT_GT(completed, 100u);
  EXPECT_GT(decode_ok, 100u);
  EXPECT_GT(feed_err, 100u);
  // Teardown balance: every completed body has been dropped by now.
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(WireFuzzTest, PureGarbageIsRejectedOrInert) {
  BufPool pool;
  {
    Reassembler reassembler(&pool);
    for (uint64_t seed = 1; seed <= 200; ++seed) {
      Rng rng(0xBAD00000 + seed);
      WirePacket garbage(rng.NextBelow(3 * kMtu));
      for (uint8_t& b : garbage) {
        b = static_cast<uint8_t>(rng.NextBelow(256));
      }
      Result<bool> result = reassembler.Feed(garbage, static_cast<TimeNs>(seed));
      if (result.ok() && result.value()) {
        // Random bytes that passed magic/version/flag validation: still must
        // decode cleanly or error out, never crash.
        Result<DecodedR2p2Message> decoded = DecodeR2p2Message(reassembler.TakeCompleted());
        if (decoded.ok()) {
          ExpectRoundTripStable(pool, decoded.value());
        }
      }
    }
    reassembler.GarbageCollect(Millis(1), 0);
    EXPECT_EQ(reassembler.pending(), 0u);
  }
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(WireFuzzTest, PooledFramePathSurvivesMutation) {
  // Same properties through the zero-copy tier: pooled frames from the
  // gather Fragment, mutated in place via writable(), fed as BufRefs.
  BufPool pool;
  uint64_t completed = 0;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(0xCAFE0000 + seed);
    Reassembler reassembler(&pool);
    RpcRequest req(RequestId{1, seed}, R2p2Policy::kReplicatedReq,
                   MakeBody(PatternBytes(rng.NextBelow(4000), static_cast<uint8_t>(seed))));
    std::vector<BufRef> frames;
    SerializeRequestInto(pool, req, kMtu, frames);
    // Bit-flip one byte of one frame half the time.
    if (rng.NextBelow(2) == 0 && !frames.empty()) {
      BufRef& frame = frames[rng.NextBelow(frames.size())];
      auto bytes = frame.writable();
      if (!bytes.empty()) {
        bytes[rng.NextBelow(bytes.size())] ^= static_cast<uint8_t>(1u << rng.NextBelow(8));
      }
    }
    for (const BufRef& frame : frames) {
      Result<bool> result = reassembler.Feed(frame, static_cast<TimeNs>(seed));
      if (!result.ok()) {
        break;
      }
      if (result.value()) {
        ++completed;
        Result<DecodedR2p2Message> decoded = DecodeR2p2Message(reassembler.TakeCompleted());
        if (decoded.ok()) {
          ExpectRoundTripStable(pool, decoded.value());
        }
      }
    }
  }
  EXPECT_GT(completed, 50u);
  EXPECT_EQ(pool.outstanding(), 0u);
}

}  // namespace
}  // namespace hovercraft
