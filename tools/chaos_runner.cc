// chaos_runner — replay one chaos schedule from the command line.
//
// Runs exactly what tests/chaos_test.cc runs for a single (schedule, seed,
// mode) triple and prints the verdict plus the nemesis event log, so a seed
// that failed in CI can be replayed and inspected deterministically:
//
//   chaos_runner --schedule=partition-leader --seed=42 --mode=hovercraft
//   chaos_runner --schedule=random --seed=7 --mode=hovercraft++ --duration-ms=300
//   chaos_runner --list-schedules
//
// With --trace-out the run records a per-request trace and writes Chrome
// trace-event JSON (load it in Perfetto / chrome://tracing); --metrics-out
// dumps the metrics registry (counters + sampled queue depths) as JSON.
// Both outputs are byte-identical across reruns of the same seed.
//
//   chaos_runner --schedule=flap --seed=3 --trace-out=trace.json --metrics-out=metrics.json
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/chaos/nemesis.h"
#include "src/chaos/runner.h"
#include "src/common/logging.h"
#include "src/obs/observability.h"

namespace hovercraft {
namespace {

struct CliOptions {
  std::string mode = "hovercraft";
  std::string schedule = "random";
  uint64_t seed = 1;
  int32_t nodes = 3;
  int32_t spares = 0;
  int32_t clients = 2;
  double rate = 4'000;
  int32_t keys = 8;
  TimeNs duration = Millis(150);
  TimeNs settle = Millis(100);
  int64_t flow_control = 0;
  uint64_t max_states = 4'000'000;
  bool retries = false;
  bool no_dedup = false;
  // Adversarial-hardening toggles (docs/hardening.md). The defenses default
  // on, matching RaftOptions; the --no-* flags re-open the attack surface so
  // a control run can demonstrate what each defense prevents.
  bool no_prevote = false;
  bool no_check_quorum = false;
  bool read_index = false;
  TimeNs read_lease_timeout = 0;  // 0 = election_timeout_min (strict lease)
  // Durability knobs (docs/durability.md). persist_latency < 0 means "pick a
  // default": 500us for the disk-* schedules (so an unsynced window exists to
  // lose), 0 otherwise.
  TimeNs persist_latency = -1;
  std::string fsync_policy = "group-commit";
  bool no_recovery = false;
  TimeNs retry_backoff = Micros(500);
  uint32_t retry_max_attempts = 0;
  bool list_schedules = false;
  bool verbose = false;
  bool help = false;
  std::string trace_out;    // Chrome trace-event JSON path ("" = no tracing)
  std::string metrics_out;  // metrics registry JSON path ("" = no dump)
  // Flight recorder + watchdog (docs/observability.md). Both default on;
  // --no-watchdog keeps recording but stops invariant checking, and
  // --flight-recorder-depth=0 turns the recorder (and watchdog) off entirely.
  size_t flight_recorder_depth = 512;
  bool no_watchdog = false;
  std::string dump_out;           // flight-recorder dump path on failure
  std::string inject_violation;   // watchdog mutation test code
  // Scripted membership events, parsed from --add-server-at-us /
  // --remove-server-at-us ("TIME_US:NODE[,TIME_US:NODE...]").
  std::vector<ChaosRunConfig::MembershipEvent> add_server_at;
  std::vector<ChaosRunConfig::MembershipEvent> remove_server_at;
  TimeNs sample_interval = Micros(100);
  uint64_t max_trace_events = 4'000'000;
};

void PrintUsage() {
  std::printf(
      "usage: chaos_runner [flags]\n"
      "  --schedule=NAME          fault schedule (default random); see --list-schedules\n"
      "  --attack=NAME            alias for --schedule, reads better for the adversarial\n"
      "                           schedules (rejoin-storm, forged-vote, timer-skew,\n"
      "                           stale-read-probe)\n"
      "  --seed=S                 replay seed (default 1)\n"
      "  --mode=vanilla|hovercraft|hovercraft++   (default hovercraft)\n"
      "  --nodes=N                cluster size (default 3)\n"
      "  --spares=N               extra servers outside the initial config (default 0);\n"
      "                           the churn-* schedules and --add-server-at-us draw on them\n"
      "  --add-server-at-us=T:N   propose AddServer(node N) T microseconds into the load\n"
      "                           window (repeatable; also takes a comma-separated list)\n"
      "  --remove-server-at-us=T:N  same for RemoveServer; deterministic under --seed\n"
      "  --clients=N              load generators (default 2)\n"
      "  --rate=RPS               per-client offered load (default 4000)\n"
      "  --keys=K                 hot keyspace size (default 8)\n"
      "  --duration-ms=M          fault + load window (default 150)\n"
      "  --settle-ms=M            quiet period before checks (default 100)\n"
      "  --flow-control=N         middlebox in-flight cap (0 = off)\n"
      "  --max-states=N           linearizability search budget (default 4000000)\n"
      "  --retries                enable client retransmission with backoff\n"
      "  --retry-backoff-us=N     initial retry backoff in microseconds (default 500)\n"
      "  --retry-max-attempts=N   abandon after N transmissions (0 = give-up timer only)\n"
      "  --no-dedup               disable the server session table (demonstrates\n"
      "                           the double-apply anomaly under --retries)\n"
      "  --no-prevote             disable the PreVote phase (control runs: rejoin-storm\n"
      "                           and timer-skew then depose the leader)\n"
      "  --no-check-quorum        disable CheckQuorum + leader stickiness (control runs:\n"
      "                           forged-vote then deposes the leader)\n"
      "  --read-index             serve read-only ops through ReadIndex leases instead\n"
      "                           of the replicated log\n"
      "  --read-lease-timeout-us=N  override the lease window (0 = election_timeout_min);\n"
      "                           large values model clock skew and yield stale reads\n"
      "  --disk-fault=NAME        alias for --schedule, reads better for the disk-fault\n"
      "                           schedules (disk-power-fail, disk-torn-write,\n"
      "                           disk-corrupt-entry, disk-fsync-stall)\n"
      "  --persist-latency-us=N   fsync cost per durability barrier (default 500 for the\n"
      "                           disk-* schedules, 0 otherwise)\n"
      "  --fsync-policy=NAME      group-commit (default) | sync-per-append |\n"
      "                           ack-before-sync (control: acks outrun the disk, so a\n"
      "                           power fail loses acknowledged writes)\n"
      "  --no-recovery            disable protocol-aware WAL recovery (control: damage\n"
      "                           below the durable frontier is silently truncated\n"
      "                           instead of quarantined + re-fetched from the leader)\n"
      "  --flight-recorder-depth=N  per-node black-box ring size (default 512; 0 turns\n"
      "                           the recorder and the watchdog off)\n"
      "  --no-watchdog            keep recording but skip online invariant checking\n"
      "  --dump-out=PATH          write the flight-recorder dump (Chrome trace JSON) on\n"
      "                           the first violation / failed verdict (default stderr\n"
      "                           summary only)\n"
      "  --inject-violation=CODE  watchdog mutation test: mid-run, inject a synthetic\n"
      "                           event stream violating one invariant; the run must\n"
      "                           FAIL with that code. Codes: dual-leader,\n"
      "                           commit-regression, lease-overlap, double-apply,\n"
      "                           flow-leak\n"
      "  --trace-out=PATH         write a Chrome trace-event JSON (Perfetto-loadable)\n"
      "  --metrics-out=PATH       write the metrics registry as JSON\n"
      "  --sample-interval-us=N   queue-depth sampling period (default 100)\n"
      "  --max-trace-events=N     trace event cap (default 4000000)\n"
      "  --list-schedules         print schedule names and exit\n"
      "  --verbose                protocol-level log while the run executes\n");
}

bool ParseFlag(const char* arg, const char* name, std::string& out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    out = arg + len + 1;
    return true;
  }
  return false;
}

// "500:3,1000:4" — membership events as microsecond-offset:node pairs.
bool ParseMembershipEvents(const std::string& value,
                           std::vector<ChaosRunConfig::MembershipEvent>& out) {
  size_t pos = 0;
  while (pos < value.size()) {
    const size_t comma = value.find(',', pos);
    const std::string item =
        value.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const size_t colon = item.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= item.size()) {
      return false;
    }
    ChaosRunConfig::MembershipEvent ev;
    ev.at = Micros(std::atoll(item.substr(0, colon).c_str()));
    ev.node = static_cast<NodeId>(std::atoi(item.substr(colon + 1).c_str()));
    out.push_back(ev);
    pos = comma == std::string::npos ? value.size() : comma + 1;
  }
  return true;
}

bool ParseOptions(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    std::string v;
    const char* a = argv[i];
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      opts.help = true;
    } else if (std::strcmp(a, "--list-schedules") == 0) {
      opts.list_schedules = true;
    } else if (std::strcmp(a, "--verbose") == 0) {
      opts.verbose = true;
    } else if (std::strcmp(a, "--retries") == 0) {
      opts.retries = true;
    } else if (std::strcmp(a, "--no-dedup") == 0) {
      opts.no_dedup = true;
    } else if (std::strcmp(a, "--no-prevote") == 0) {
      opts.no_prevote = true;
    } else if (std::strcmp(a, "--no-check-quorum") == 0) {
      opts.no_check_quorum = true;
    } else if (std::strcmp(a, "--read-index") == 0) {
      opts.read_index = true;
    } else if (ParseFlag(a, "--read-lease-timeout-us", v)) {
      opts.read_lease_timeout = Micros(std::atoll(v.c_str()));
    } else if (std::strcmp(a, "--no-recovery") == 0) {
      opts.no_recovery = true;
    } else if (ParseFlag(a, "--attack", v)) {
      opts.schedule = v;
    } else if (ParseFlag(a, "--disk-fault", v)) {
      opts.schedule = v;
    } else if (ParseFlag(a, "--persist-latency-us", v)) {
      opts.persist_latency = Micros(std::atoll(v.c_str()));
    } else if (ParseFlag(a, "--fsync-policy", v)) {
      opts.fsync_policy = v;
    } else if (ParseFlag(a, "--retry-backoff-us", v)) {
      opts.retry_backoff = Micros(std::atoll(v.c_str()));
    } else if (ParseFlag(a, "--retry-max-attempts", v)) {
      opts.retry_max_attempts = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(a, "--mode", v)) {
      opts.mode = v;
    } else if (ParseFlag(a, "--schedule", v)) {
      opts.schedule = v;
    } else if (ParseFlag(a, "--seed", v)) {
      opts.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(a, "--nodes", v)) {
      opts.nodes = std::atoi(v.c_str());
    } else if (ParseFlag(a, "--spares", v)) {
      opts.spares = std::atoi(v.c_str());
    } else if (ParseFlag(a, "--add-server-at-us", v)) {
      if (!ParseMembershipEvents(v, opts.add_server_at)) {
        std::fprintf(stderr, "bad --add-server-at-us=%s (want TIME_US:NODE[,...])\n", v.c_str());
        return false;
      }
    } else if (ParseFlag(a, "--remove-server-at-us", v)) {
      if (!ParseMembershipEvents(v, opts.remove_server_at)) {
        std::fprintf(stderr, "bad --remove-server-at-us=%s (want TIME_US:NODE[,...])\n",
                     v.c_str());
        return false;
      }
    } else if (ParseFlag(a, "--clients", v)) {
      opts.clients = std::atoi(v.c_str());
    } else if (ParseFlag(a, "--rate", v)) {
      opts.rate = std::atof(v.c_str());
    } else if (ParseFlag(a, "--keys", v)) {
      opts.keys = std::atoi(v.c_str());
    } else if (ParseFlag(a, "--duration-ms", v)) {
      opts.duration = Millis(std::atoll(v.c_str()));
    } else if (ParseFlag(a, "--settle-ms", v)) {
      opts.settle = Millis(std::atoll(v.c_str()));
    } else if (ParseFlag(a, "--flow-control", v)) {
      opts.flow_control = std::atoll(v.c_str());
    } else if (ParseFlag(a, "--max-states", v)) {
      opts.max_states = std::strtoull(v.c_str(), nullptr, 10);
    } else if (std::strcmp(a, "--no-watchdog") == 0) {
      opts.no_watchdog = true;
    } else if (ParseFlag(a, "--flight-recorder-depth", v)) {
      opts.flight_recorder_depth = static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    } else if (ParseFlag(a, "--dump-out", v)) {
      opts.dump_out = v;
    } else if (ParseFlag(a, "--inject-violation", v)) {
      opts.inject_violation = v;
    } else if (ParseFlag(a, "--trace-out", v)) {
      opts.trace_out = v;
    } else if (ParseFlag(a, "--metrics-out", v)) {
      opts.metrics_out = v;
    } else if (ParseFlag(a, "--sample-interval-us", v)) {
      opts.sample_interval = Micros(std::atoll(v.c_str()));
    } else if (ParseFlag(a, "--max-trace-events", v)) {
      opts.max_trace_events = std::strtoull(v.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      return false;
    }
  }
  return true;
}

int Run(const CliOptions& opts, const std::string& repro) {
  if (opts.verbose) {
    SetLogLevel(LogLevel::kInfo);
  }
  ChaosRunConfig config;
  if (opts.mode == "vanilla") {
    config.mode = ClusterMode::kVanillaRaft;
  } else if (opts.mode == "hovercraft") {
    config.mode = ClusterMode::kHovercRaft;
  } else if (opts.mode == "hovercraft++") {
    config.mode = ClusterMode::kHovercRaftPP;
  } else {
    std::fprintf(stderr, "bad --mode=%s (chaos needs a replicated mode)\n", opts.mode.c_str());
    return 2;
  }
  if (!Nemesis::IsValidSchedule(opts.schedule)) {
    std::fprintf(stderr, "bad --schedule=%s; try --list-schedules\n", opts.schedule.c_str());
    return 2;
  }
  config.schedule = opts.schedule;
  config.seed = opts.seed;
  config.nodes = opts.nodes;
  config.spare_nodes = opts.spares;
  config.add_server_at = opts.add_server_at;
  config.remove_server_at = opts.remove_server_at;
  config.clients = opts.clients;
  config.rate_rps_per_client = opts.rate;
  config.keys = opts.keys;
  config.duration = opts.duration;
  config.settle = opts.settle;
  config.flow_control_threshold = opts.flow_control;
  config.checker_max_states = opts.max_states;
  config.retry_enabled = opts.retries;
  config.retry_initial_backoff = opts.retry_backoff;
  config.retry_max_attempts = opts.retry_max_attempts;
  config.dedup_enabled = !opts.no_dedup;
  config.pre_vote = !opts.no_prevote;
  config.check_quorum = !opts.no_check_quorum;
  config.read_index = opts.read_index;
  config.read_lease_timeout = opts.read_lease_timeout;
  if (!ParseFsyncPolicy(opts.fsync_policy, &config.fsync_policy)) {
    std::fprintf(stderr,
                 "bad --fsync-policy=%s (want group-commit | sync-per-append | "
                 "ack-before-sync)\n",
                 opts.fsync_policy.c_str());
    return 2;
  }
  config.wal_recovery = !opts.no_recovery;
  config.flight_recorder_depth = opts.flight_recorder_depth;
  config.watchdog = !opts.no_watchdog;
  config.dump_path = opts.dump_out;
  config.repro = repro;
  if (!opts.inject_violation.empty()) {
    const char* kCodes[] = {"dual-leader", "commit-regression", "lease-overlap",
                            "double-apply", "flow-leak"};
    bool known = false;
    for (const char* code : kCodes) {
      known = known || opts.inject_violation == code;
    }
    if (!known) {
      std::fprintf(stderr,
                   "bad --inject-violation=%s (want dual-leader | commit-regression | "
                   "lease-overlap | double-apply | flow-leak)\n",
                   opts.inject_violation.c_str());
      return 2;
    }
    if (opts.flight_recorder_depth == 0) {
      std::fprintf(stderr, "--inject-violation needs the flight recorder on\n");
      return 2;
    }
    config.inject_violation = opts.inject_violation;
  }
  // The disk-* schedules need a nonzero fsync window or there is nothing to
  // lose; elsewhere the default stays at the paper's persist_latency=0.
  const bool disk_schedule = opts.schedule.rfind("disk-", 0) == 0;
  config.persist_latency =
      opts.persist_latency >= 0 ? opts.persist_latency : (disk_schedule ? Micros(500) : 0);

  std::printf(
      "chaos_runner: mode=%s schedule=%s seed=%llu nodes=%d duration=%lldms retries=%d dedup=%d "
      "prevote=%d check_quorum=%d read_index=%d persist_us=%lld fsync=%s recovery=%d "
      "fr_depth=%zu watchdog=%d\n",
      opts.mode.c_str(), opts.schedule.c_str(), static_cast<unsigned long long>(opts.seed),
      opts.nodes, static_cast<long long>(opts.duration / 1'000'000), opts.retries ? 1 : 0,
      opts.no_dedup ? 0 : 1, opts.no_prevote ? 0 : 1, opts.no_check_quorum ? 0 : 1,
      opts.read_index ? 1 : 0,
      static_cast<long long>(config.persist_latency / 1'000),
      FsyncPolicyName(config.fsync_policy), config.wal_recovery ? 1 : 0,
      config.flight_recorder_depth, config.watchdog ? 1 : 0);
  std::unique_ptr<obs::Observability> observability;
  const bool want_obs = !opts.trace_out.empty() || !opts.metrics_out.empty();
  if (want_obs) {
    obs::Observability::Options oo;
    oo.tracing = !opts.trace_out.empty();
    oo.sampling = !opts.metrics_out.empty();
    oo.sample_interval = opts.sample_interval;
    oo.max_trace_events = opts.max_trace_events;
    observability = std::make_unique<obs::Observability>(oo);
    config.obs = observability.get();
  }

  const ChaosRunResult result = RunChaosSchedule(config);
  std::printf("%s", result.Describe().c_str());

  if (observability != nullptr) {
    if (auto* tracer = observability->tracer()) {
      if (!opts.trace_out.empty()) {
        std::ofstream out(opts.trace_out, std::ios::binary);
        if (!out) {
          std::fprintf(stderr, "cannot write %s\n", opts.trace_out.c_str());
          return 2;
        }
        tracer->WriteChromeJson(out);
        std::printf("trace: %zu events -> %s (dropped %llu)\n", tracer->event_count(),
                    opts.trace_out.c_str(),
                    static_cast<unsigned long long>(tracer->dropped_events()));
      }
      std::printf("%s", tracer->BreakdownTable().c_str());
    }
    if (!opts.metrics_out.empty()) {
      std::ofstream out(opts.metrics_out, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", opts.metrics_out.c_str());
        return 2;
      }
      observability->metrics().DumpJson(out);
      std::printf("metrics: %zu entries -> %s\n", observability->metrics().size(),
                  opts.metrics_out.c_str());
    }
  }

  std::printf("verdict: %s\n", result.ok() ? "OK" : "FAIL");
  return result.ok() ? 0 : 1;
}

}  // namespace
}  // namespace hovercraft

int main(int argc, char** argv) {
  hovercraft::CliOptions opts;
  if (!hovercraft::ParseOptions(argc, argv, opts)) {
    hovercraft::PrintUsage();
    return 2;
  }
  if (opts.help) {
    hovercraft::PrintUsage();
    return 0;
  }
  if (opts.list_schedules) {
    for (const std::string& name : hovercraft::Nemesis::ScheduleNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  // The exact invocation, printed with every flight-recorder dump so a
  // failure is replayable straight from the artifact.
  std::string repro = "chaos_runner";
  for (int i = 1; i < argc; ++i) {
    repro += " ";
    repro += argv[i];
  }
  return hovercraft::Run(opts, repro);
}
