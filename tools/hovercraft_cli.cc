// hovercraft_cli — run a HovercRaft deployment from the command line.
//
// Builds a cluster in any of the four modes, drives it with the synthetic or
// YCSB-E workload at a fixed rate (or searches for the max throughput under
// an SLO), and prints the measured latency distribution. Every run is
// deterministic in --seed.
//
// Examples:
//   hovercraft_cli --mode=hovercraft++ --nodes=5 --rate=500000
//   hovercraft_cli --mode=vanilla --nodes=3 --request-bytes=512 --rate=300000
//   hovercraft_cli --mode=hovercraft++ --nodes=3 --workload=ycsbe --slo-search
//   hovercraft_cli --mode=unrep --rate=800000 --service-us=1
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/app/kvstore/service.h"
#include "src/app/ycsb.h"
#include "src/loadgen/experiment.h"
#include "src/loadgen/workload.h"

namespace hovercraft {
namespace {

struct CliOptions {
  std::string mode = "hovercraft++";
  int32_t nodes = 3;
  int32_t spares = 0;
  // Scripted membership events ("TIME_US:NODE[,TIME_US:NODE...]"), offset
  // from load start; deterministic under --seed.
  std::vector<ExperimentConfig::MembershipEvent> add_server_at;
  std::vector<ExperimentConfig::MembershipEvent> remove_server_at;
  std::string workload = "synthetic";
  double rate = 100e3;
  bool slo_search = false;
  TimeNs slo = Micros(500);
  int32_t request_bytes = 24;
  int32_t reply_bytes = 8;
  TimeNs service = Micros(1);
  double read_only = 0.0;
  double bimodal_ratio = 0.0;  // >1 enables the bimodal distribution
  std::string policy = "jbsq";
  int64_t bounded_queue = 128;
  int64_t flow_control = 0;
  TimeNs warmup = Millis(100);
  TimeNs measure = Millis(300);
  uint64_t seed = 42;
  int32_t clients = 8;
  // Adversarial-hardening toggles (docs/hardening.md); defenses default on.
  bool no_prevote = false;
  bool no_check_quorum = false;
  bool read_index = false;
  bool help = false;
};

void PrintUsage() {
  std::printf(
      "usage: hovercraft_cli [flags]\n"
      "  --mode=unrep|vanilla|hovercraft|hovercraft++   (default hovercraft++)\n"
      "  --nodes=N                cluster size (default 3)\n"
      "  --spares=N               extra servers outside the initial config (default 0)\n"
      "  --add-server-at-us=T:N   propose AddServer(node N) T microseconds after load\n"
      "                           start (repeatable / comma-separated list)\n"
      "  --remove-server-at-us=T:N  same for RemoveServer\n"
      "  --workload=synthetic|ycsbe\n"
      "  --rate=RPS               offered load (default 100000)\n"
      "  --slo-search             find max throughput under --slo-us instead\n"
      "  --slo-us=U               tail SLO for the search (default 500)\n"
      "  --request-bytes=B --reply-bytes=B (synthetic)\n"
      "  --service-us=U           synthetic service time (default 1)\n"
      "  --bimodal-ratio=R        10%% of requests take R x the base time\n"
      "  --read-only=F            read-only fraction 0..1 (default 0)\n"
      "  --policy=jbsq|random|leader\n"
      "  --bounded-queue=B        replier queue bound (default 128)\n"
      "  --flow-control=N         middlebox in-flight cap (0 = off)\n"
      "  --warmup-ms=M --measure-ms=M\n"
      "  --clients=N --seed=S\n"
      "  --no-prevote             disable the PreVote phase\n"
      "  --no-check-quorum        disable CheckQuorum + leader stickiness\n"
      "  --read-index             serve the --read-only fraction through ReadIndex\n"
      "                           leases instead of the replicated log\n");
}

bool ParseFlag(const char* arg, const char* name, std::string& out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    out = arg + len + 1;
    return true;
  }
  return false;
}

// "500:3,1000:4" — membership events as microsecond-offset:node pairs.
bool ParseMembershipEvents(const std::string& value,
                           std::vector<ExperimentConfig::MembershipEvent>& out) {
  size_t pos = 0;
  while (pos < value.size()) {
    const size_t comma = value.find(',', pos);
    const std::string item =
        value.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const size_t colon = item.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= item.size()) {
      return false;
    }
    ExperimentConfig::MembershipEvent ev;
    ev.at = Micros(std::atoll(item.substr(0, colon).c_str()));
    ev.node = static_cast<NodeId>(std::atoi(item.substr(colon + 1).c_str()));
    out.push_back(ev);
    pos = comma == std::string::npos ? value.size() : comma + 1;
  }
  return true;
}

bool ParseOptions(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    std::string v;
    const char* a = argv[i];
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      opts.help = true;
    } else if (ParseFlag(a, "--mode", v)) {
      opts.mode = v;
    } else if (ParseFlag(a, "--nodes", v)) {
      opts.nodes = std::atoi(v.c_str());
    } else if (ParseFlag(a, "--spares", v)) {
      opts.spares = std::atoi(v.c_str());
    } else if (ParseFlag(a, "--add-server-at-us", v)) {
      if (!ParseMembershipEvents(v, opts.add_server_at)) {
        std::fprintf(stderr, "bad --add-server-at-us=%s (want TIME_US:NODE[,...])\n", v.c_str());
        return false;
      }
    } else if (ParseFlag(a, "--remove-server-at-us", v)) {
      if (!ParseMembershipEvents(v, opts.remove_server_at)) {
        std::fprintf(stderr, "bad --remove-server-at-us=%s (want TIME_US:NODE[,...])\n",
                     v.c_str());
        return false;
      }
    } else if (ParseFlag(a, "--workload", v)) {
      opts.workload = v;
    } else if (ParseFlag(a, "--rate", v)) {
      opts.rate = std::atof(v.c_str());
    } else if (std::strcmp(a, "--slo-search") == 0) {
      opts.slo_search = true;
    } else if (ParseFlag(a, "--slo-us", v)) {
      opts.slo = Micros(std::atoll(v.c_str()));
    } else if (ParseFlag(a, "--request-bytes", v)) {
      opts.request_bytes = std::atoi(v.c_str());
    } else if (ParseFlag(a, "--reply-bytes", v)) {
      opts.reply_bytes = std::atoi(v.c_str());
    } else if (ParseFlag(a, "--service-us", v)) {
      opts.service = Micros(std::atoll(v.c_str()));
    } else if (ParseFlag(a, "--bimodal-ratio", v)) {
      opts.bimodal_ratio = std::atof(v.c_str());
    } else if (ParseFlag(a, "--read-only", v)) {
      opts.read_only = std::atof(v.c_str());
    } else if (ParseFlag(a, "--policy", v)) {
      opts.policy = v;
    } else if (ParseFlag(a, "--bounded-queue", v)) {
      opts.bounded_queue = std::atoll(v.c_str());
    } else if (ParseFlag(a, "--flow-control", v)) {
      opts.flow_control = std::atoll(v.c_str());
    } else if (ParseFlag(a, "--warmup-ms", v)) {
      opts.warmup = Millis(std::atoll(v.c_str()));
    } else if (ParseFlag(a, "--measure-ms", v)) {
      opts.measure = Millis(std::atoll(v.c_str()));
    } else if (ParseFlag(a, "--clients", v)) {
      opts.clients = std::atoi(v.c_str());
    } else if (ParseFlag(a, "--seed", v)) {
      opts.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (std::strcmp(a, "--no-prevote") == 0) {
      opts.no_prevote = true;
    } else if (std::strcmp(a, "--no-check-quorum") == 0) {
      opts.no_check_quorum = true;
    } else if (std::strcmp(a, "--read-index") == 0) {
      opts.read_index = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      return false;
    }
  }
  return true;
}

int Run(const CliOptions& opts) {
  ClusterMode mode;
  if (opts.mode == "unrep") {
    mode = ClusterMode::kUnreplicated;
  } else if (opts.mode == "vanilla") {
    mode = ClusterMode::kVanillaRaft;
  } else if (opts.mode == "hovercraft") {
    mode = ClusterMode::kHovercRaft;
  } else if (opts.mode == "hovercraft++") {
    mode = ClusterMode::kHovercRaftPP;
  } else {
    std::fprintf(stderr, "bad --mode=%s\n", opts.mode.c_str());
    return 2;
  }

  ReplierPolicy policy;
  if (opts.policy == "jbsq") {
    policy = ReplierPolicy::kJbsq;
  } else if (opts.policy == "random") {
    policy = ReplierPolicy::kRandom;
  } else if (opts.policy == "leader") {
    policy = ReplierPolicy::kLeaderOnly;
  } else {
    std::fprintf(stderr, "bad --policy=%s\n", opts.policy.c_str());
    return 2;
  }

  ExperimentConfig config;
  config.cluster.mode = mode;
  config.cluster.nodes = opts.nodes;
  config.cluster.spare_nodes = opts.spares;
  config.add_server_at = opts.add_server_at;
  config.remove_server_at = opts.remove_server_at;
  config.cluster.replier_policy = policy;
  config.cluster.bounded_queue_depth = opts.bounded_queue;
  config.cluster.flow_control_threshold = opts.flow_control;
  config.cluster.seed = opts.seed;
  config.cluster.raft.pre_vote = !opts.no_prevote;
  config.cluster.raft.check_quorum = !opts.no_check_quorum;
  config.cluster.raft.read_index = opts.read_index;
  config.client_count = opts.clients;
  config.warmup = opts.warmup;
  config.measure = opts.measure;
  config.seed = opts.seed;

  if (opts.workload == "synthetic") {
    config.cluster.app_factory = []() { return std::make_unique<SyntheticService>(); };
    SyntheticWorkloadConfig wc;
    wc.request_bytes = opts.request_bytes;
    wc.reply_bytes = opts.reply_bytes;
    wc.read_only_fraction = opts.read_only;
    if (opts.bimodal_ratio > 1.0) {
      wc.service_time =
          std::make_shared<BimodalDistribution>(opts.service, 0.1, opts.bimodal_ratio);
    } else {
      wc.service_time = std::make_shared<FixedDistribution>(opts.service);
    }
    config.workload_factory = [wc]() { return std::make_unique<SyntheticWorkload>(wc); };
  } else if (opts.workload == "ycsbe") {
    YcsbEConfig ycsb;
    config.cluster.app_factory = [ycsb]() {
      auto svc = std::make_unique<KvService>();
      Rng rng(0xFEED5EED);
      YcsbEGenerator gen(ycsb);
      for (const KvCommand& cmd : gen.PreloadCommands(rng)) {
        svc->Apply(cmd);
      }
      return svc;
    };
    config.workload_factory = [ycsb]() { return std::make_unique<YcsbEWorkload>(ycsb); };
  } else {
    std::fprintf(stderr, "bad --workload=%s\n", opts.workload.c_str());
    return 2;
  }

  std::printf("# mode=%s nodes=%d workload=%s policy=%s seed=%llu prevote=%d check_quorum=%d"
              " read_index=%d\n",
              opts.mode.c_str(), opts.nodes, opts.workload.c_str(), opts.policy.c_str(),
              static_cast<unsigned long long>(opts.seed), opts.no_prevote ? 0 : 1,
              opts.no_check_quorum ? 0 : 1, opts.read_index ? 1 : 0);

  if (opts.slo_search) {
    const SloResult r =
        FindMaxThroughputUnderSlo(config, opts.slo, 0.05 * opts.rate, 2.0 * opts.rate);
    std::printf("max throughput under %.0fus p99 SLO: %.0f rps (p99=%.1fus at offered %.0f)\n",
                static_cast<double>(opts.slo) / 1e3, r.max_rps_under_slo,
                static_cast<double>(r.p99_at_max) / 1e3, r.offered_at_max);
    return 0;
  }

  const LoadMetrics m = RunLoadPoint(config, opts.rate);
  std::printf("offered:   %10.0f rps\n", m.offered_rps);
  std::printf("achieved:  %10.0f rps\n", m.achieved_rps);
  std::printf("latency:   p50=%.1fus  p99=%.1fus  mean=%.1fus\n",
              static_cast<double>(m.p50_ns) / 1e3, static_cast<double>(m.p99_ns) / 1e3,
              m.mean_ns / 1e3);
  std::printf("counters:  sent=%llu completed=%llu nacked=%llu lost=%llu\n",
              static_cast<unsigned long long>(m.sent), static_cast<unsigned long long>(m.completed),
              static_cast<unsigned long long>(m.nacked), static_cast<unsigned long long>(m.lost));
  return 0;
}

}  // namespace
}  // namespace hovercraft

int main(int argc, char** argv) {
  hovercraft::CliOptions opts;
  if (!hovercraft::ParseOptions(argc, argv, opts)) {
    hovercraft::PrintUsage();
    return 2;
  }
  if (opts.help) {
    hovercraft::PrintUsage();
    return 0;
  }
  return hovercraft::Run(opts);
}
