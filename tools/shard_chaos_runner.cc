// shard_chaos_runner — replay one sharded-chaos run from the command line.
//
// Runs exactly what tests/shard_chaos_test.cc runs for a single seed and
// prints the verdict (docs/sharding.md): live shard moves under open-loop
// load, client history checked for linearizability across the moves. A seed
// that failed in CI replays deterministically:
//
//   shard_chaos_runner --seed=3
//   shard_chaos_runner --seed=5 --kill-leader-mid-move
//   shard_chaos_runner --groups=4 --duration-ms=80 \
//       --move-at-us=20000:0:7:1,40000:0:7:2,60000:0:7:0
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/shard/shard_chaos.h"

namespace hovercraft {
namespace {

struct CliOptions {
  uint64_t seed = 1;
  int32_t groups = 2;
  int32_t nodes_per_group = 3;
  int32_t clients = 4;
  double rate = 20'000;
  int32_t keys = 16;
  TimeNs duration = Millis(120);
  TimeNs settle = Millis(80);
  int64_t flow_control = 0;
  uint64_t max_states = 4'000'000;
  bool kill_leader_mid_move = false;
  std::vector<ShardChaosConfig::MoveEvent> moves;
  std::string dump_out;
  bool verbose = false;
  bool help = false;
};

void PrintUsage() {
  std::printf(
      "usage: shard_chaos_runner [flags]\n"
      "  --seed=S                 replay seed (default 1)\n"
      "  --groups=N               consensus groups on the shared fabric (default 2)\n"
      "  --nodes-per-group=N      replicas per group (default 3)\n"
      "  --clients=N              load generators (default 4)\n"
      "  --rate=RPS               per-client offered load (default 20000)\n"
      "  --keys=K                 hot keyspace size (default 16)\n"
      "  --duration-ms=M          load + move window (default 120)\n"
      "  --settle-ms=M            quiet period before checks (default 80)\n"
      "  --flow-control=N         per-group admission cap (0 = off)\n"
      "  --max-states=N           linearizability search budget (default 4000000)\n"
      "  --kill-leader-mid-move   crash the source group's leader 1 ms into the\n"
      "                           first move, restart it 20 ms later\n"
      "  --move-at-us=T:LO:HI:D   move slots [LO,HI] to group D, T microseconds\n"
      "                           into the load window (comma-separated list;\n"
      "                           default: group 0's range to group 1 and back)\n"
      "  --dump-out=PATH          flight-recorder dump (Chrome trace JSON) on a\n"
      "                           failed verdict\n"
      "  --verbose                protocol-level log while the run executes\n");
}

bool ParseFlag(const char* arg, const char* name, std::string& out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    out = arg + len + 1;
    return true;
  }
  return false;
}

// "20000:0:7:1,40000:0:7:2" — microsecond-offset:lo:hi:dest tuples.
bool ParseMoves(const std::string& value, std::vector<ShardChaosConfig::MoveEvent>& out) {
  size_t pos = 0;
  while (pos < value.size()) {
    const size_t comma = value.find(',', pos);
    const std::string item =
        value.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    ShardChaosConfig::MoveEvent ev;
    if (std::sscanf(item.c_str(), "%lld:%u:%u:%d", reinterpret_cast<long long*>(&ev.at), &ev.lo,
                    &ev.hi, &ev.dest) != 4) {
      return false;
    }
    ev.at = Micros(ev.at);
    out.push_back(ev);
    pos = comma == std::string::npos ? value.size() : comma + 1;
  }
  return true;
}

bool ParseOptions(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    std::string v;
    const char* a = argv[i];
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      opts.help = true;
    } else if (std::strcmp(a, "--verbose") == 0) {
      opts.verbose = true;
    } else if (std::strcmp(a, "--kill-leader-mid-move") == 0) {
      opts.kill_leader_mid_move = true;
    } else if (ParseFlag(a, "--seed", v)) {
      opts.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(a, "--groups", v)) {
      opts.groups = std::atoi(v.c_str());
    } else if (ParseFlag(a, "--nodes-per-group", v)) {
      opts.nodes_per_group = std::atoi(v.c_str());
    } else if (ParseFlag(a, "--clients", v)) {
      opts.clients = std::atoi(v.c_str());
    } else if (ParseFlag(a, "--rate", v)) {
      opts.rate = std::atof(v.c_str());
    } else if (ParseFlag(a, "--keys", v)) {
      opts.keys = std::atoi(v.c_str());
    } else if (ParseFlag(a, "--duration-ms", v)) {
      opts.duration = Millis(std::atoll(v.c_str()));
    } else if (ParseFlag(a, "--settle-ms", v)) {
      opts.settle = Millis(std::atoll(v.c_str()));
    } else if (ParseFlag(a, "--flow-control", v)) {
      opts.flow_control = std::atoll(v.c_str());
    } else if (ParseFlag(a, "--max-states", v)) {
      opts.max_states = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(a, "--move-at-us", v)) {
      if (!ParseMoves(v, opts.moves)) {
        std::fprintf(stderr, "bad --move-at-us=%s (want TIME_US:LO:HI:DEST[,...])\n", v.c_str());
        return false;
      }
    } else if (ParseFlag(a, "--dump-out", v)) {
      opts.dump_out = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace hovercraft

int main(int argc, char** argv) {
  hovercraft::CliOptions opts;
  if (!hovercraft::ParseOptions(argc, argv, opts)) {
    hovercraft::PrintUsage();
    return 2;
  }
  if (opts.help) {
    hovercraft::PrintUsage();
    return 0;
  }
  if (opts.verbose) {
    hovercraft::SetLogLevel(hovercraft::LogLevel::kInfo);
  }

  hovercraft::ShardChaosConfig config;
  config.seed = opts.seed;
  config.groups = opts.groups;
  config.nodes_per_group = opts.nodes_per_group;
  config.clients = opts.clients;
  config.rate_rps_per_client = opts.rate;
  config.keys = opts.keys;
  config.duration = opts.duration;
  config.settle = opts.settle;
  config.flow_control_threshold = opts.flow_control;
  config.checker_max_states = opts.max_states;
  config.kill_leader_mid_move = opts.kill_leader_mid_move;
  config.moves = opts.moves;
  config.dump_path = opts.dump_out;
  // The exact invocation, printed with every flight-recorder dump so a
  // failure is replayable straight from the artifact.
  config.repro = "shard_chaos_runner";
  for (int i = 1; i < argc; ++i) {
    config.repro += " ";
    config.repro += argv[i];
  }

  std::printf(
      "shard_chaos_runner: seed=%llu groups=%d nodes_per_group=%d clients=%d rate=%.0f "
      "keys=%d duration=%lldms kill_leader=%d moves=%zu\n",
      static_cast<unsigned long long>(opts.seed), opts.groups, opts.nodes_per_group,
      opts.clients, opts.rate, opts.keys, static_cast<long long>(opts.duration / 1'000'000),
      opts.kill_leader_mid_move ? 1 : 0, opts.moves.size());

  const hovercraft::ShardChaosResult result = hovercraft::RunShardChaos(config);
  std::printf("%s", result.Describe().c_str());
  std::printf("verdict: %s\n", result.ok() ? "OK" : "FAIL");
  return result.ok() ? 0 : 1;
}
