// Parallel seed-sweep driver (ISSUE 4).
//
// Fans a grid of (system, offered rate, seed) load points out over a pool of
// worker threads — one independent Simulator per load point, so every point
// is exactly the run the serial benches would produce — and merges the
// results into one metrics JSON deterministically: points are recorded in
// grid order regardless of which worker finished first, so `-j 16` writes a
// byte-identical file to `-j 1`. `--verify` proves it on every invocation by
// running the grid both ways and comparing the merged bytes.
//
// Defaults reproduce the Figure 7 grid (4 systems x 8 offered rates, S=1us,
// 24B/8B, N=3, reply load balancing off) across `--seeds` consecutive seeds.
//
// Usage:
//   tools/sweep -j $(nproc) --seeds=5 --metrics-out=sweep.json
//   tools/sweep --verify -j 2 --seeds=2 --rates=20000,50000 --modes=hovercraft++
//
// Flags:
//   -j N, --jobs=N     worker threads (default 1)
//   --seeds=N          consecutive seeds per grid point (default 3)
//   --seed=BASE        first seed (default 42, the benches' pinned seed)
//   --rates=a,b,...    offered rates in rps (default: the fig7 list)
//   --modes=a,b,...    subset of vanilla,hovercraft,hovercraft++,unrep
//   --warmup-ms=N      per-point warmup window (default 80)
//   --measure-ms=N     per-point measurement window (default 200)
//   --metrics-out=PATH merged metrics JSON
//   --verify           run the grid with --jobs and again serially; fail
//                      unless the merged outputs are byte-identical
//
// Merged metric names:
//   <system>/s<seed>/r<rps>/load.*|latency.*   per-point summary (the same
//                                              shape the fig benches record)
//   <system>/r<rps>/agg/...                    across-seed aggregates
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/logging.h"
#include "src/loadgen/experiment.h"
#include "src/obs/metrics.h"

namespace hovercraft {
namespace {

struct SystemDef {
  const char* name;
  const char* flag;  // --modes= token
  ClusterMode mode;
};

constexpr SystemDef kSystems[] = {
    {"VanillaRaft", "vanilla", ClusterMode::kVanillaRaft},
    {"HovercRaft", "hovercraft", ClusterMode::kHovercRaft},
    {"HovercRaft++", "hovercraft++", ClusterMode::kHovercRaftPP},
    {"UnRep", "unrep", ClusterMode::kUnreplicated},
};

struct Options {
  int jobs = 1;
  int seeds = 3;
  uint64_t base_seed = 42;
  std::vector<double> rates = {50e3, 200e3, 400e3, 600e3, 800e3, 900e3, 950e3, 1000e3};
  std::vector<SystemDef> systems;
  int64_t warmup_ms = 80;
  int64_t measure_ms = 200;
  std::string metrics_out;
  bool verify = false;
};

// One cell of the sweep grid. Tasks are generated — and always recorded — in
// (system, rate, seed) order; workers may execute them in any order.
struct Task {
  SystemDef system;
  double rate;
  uint64_t seed;
};

std::vector<Task> BuildGrid(const Options& opt) {
  std::vector<Task> grid;
  for (const SystemDef& system : opt.systems) {
    for (double rate : opt.rates) {
      for (int s = 0; s < opt.seeds; ++s) {
        grid.push_back(Task{system, rate, opt.base_seed + static_cast<uint64_t>(s)});
      }
    }
  }
  return grid;
}

LoadMetrics RunTask(const Task& task, const Options& opt) {
  SyntheticWorkloadConfig workload;  // the fig7 workload: S=1us, 24B/8B
  workload.request_bytes = 24;
  workload.reply_bytes = 8;
  workload.service_time = std::make_shared<FixedDistribution>(Micros(1));
  ExperimentConfig config = benchutil::MakeSyntheticExperiment(
      task.system.mode, 3, workload, ReplierPolicy::kLeaderOnly, 128, task.seed);
  config.warmup = Millis(opt.warmup_ms);
  config.measure = Millis(opt.measure_ms);
  return RunLoadPoint(config, task.rate);
}

// Executes the whole grid on `jobs` threads. The result vector is indexed by
// task position, so completion order cannot leak into the output.
std::vector<LoadMetrics> RunGrid(const std::vector<Task>& grid, const Options& opt, int jobs) {
  std::vector<LoadMetrics> results(grid.size());
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= grid.size()) {
        return;
      }
      results[i] = RunTask(grid[i], opt);
    }
  };
  if (jobs <= 1) {
    worker();
    return results;
  }
  std::vector<std::thread> pool;
  const int n = std::min<int>(jobs, static_cast<int>(grid.size()));
  pool.reserve(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  return results;
}

std::string PointScope(const Task& task) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s/s%llu/r%lld/", task.system.name,
                static_cast<unsigned long long>(task.seed),
                static_cast<long long>(std::llround(task.rate)));
  return buf;
}

// Deterministic merge: walk the grid in generation order and record each
// point's summary (same shape as BenchIo::RecordLoadPoint), then per-(system,
// rate) aggregates across seeds. Everything is integer-rounded, so the JSON
// bytes depend only on the grid and the per-point results.
void Merge(const std::vector<Task>& grid, const std::vector<LoadMetrics>& results,
           const Options& opt, obs::MetricsRegistry& reg) {
  for (size_t i = 0; i < grid.size(); ++i) {
    const LoadMetrics& m = results[i];
    const std::string scope = PointScope(grid[i]);
    reg.SetGauge(scope + "load.offered_rps", std::llround(m.offered_rps));
    reg.SetGauge(scope + "load.achieved_rps", std::llround(m.achieved_rps));
    reg.SetGauge(scope + "load.nack_rps", std::llround(m.nack_rps));
    reg.SetCounter(scope + "load.sent", m.sent);
    reg.SetCounter(scope + "load.completed", m.completed);
    reg.SetCounter(scope + "load.nacked", m.nacked);
    reg.SetCounter(scope + "load.lost", m.lost);
    reg.SetGauge(scope + "latency.mean_ns", static_cast<int64_t>(m.mean_ns));
    reg.SetGauge(scope + "latency.p50_ns", m.p50_ns);
    reg.SetGauge(scope + "latency.p99_ns", m.p99_ns);
  }
  // Seeds for one (system, rate) are adjacent in grid order.
  const size_t seeds = static_cast<size_t>(opt.seeds);
  for (size_t base = 0; base + seeds <= grid.size(); base += seeds) {
    double achieved_sum = 0;
    double p99_sum = 0;
    int64_t p99_max = 0;
    uint64_t lost = 0;
    for (size_t s = 0; s < seeds; ++s) {
      const LoadMetrics& m = results[base + s];
      achieved_sum += m.achieved_rps;
      p99_sum += static_cast<double>(m.p99_ns);
      p99_max = std::max(p99_max, m.p99_ns);
      lost += m.lost;
    }
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s/r%lld/agg/", grid[base].system.name,
                  static_cast<long long>(std::llround(grid[base].rate)));
    const std::string scope = buf;
    reg.SetGauge(scope + "seeds", static_cast<int64_t>(seeds));
    reg.SetGauge(scope + "achieved_rps_mean",
                 std::llround(achieved_sum / static_cast<double>(seeds)));
    reg.SetGauge(scope + "p99_ns_mean", std::llround(p99_sum / static_cast<double>(seeds)));
    reg.SetGauge(scope + "p99_ns_max", p99_max);
    reg.SetCounter(scope + "lost_total", lost);
  }
}

std::string RunAndMerge(const std::vector<Task>& grid, const Options& opt, int jobs) {
  const std::vector<LoadMetrics> results = RunGrid(grid, opt, jobs);
  obs::MetricsRegistry reg;
  Merge(grid, results, opt, reg);
  std::ostringstream out;
  reg.DumpJson(out);
  return out.str();
}

bool SplitCsv(const std::string& csv, std::vector<std::string>& out) {
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return !out.empty();
}

int Main(int argc, char** argv) {
  Options opt;
  std::vector<std::string> mode_flags;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "-j") == 0 && i + 1 < argc) {
      opt.jobs = std::atoi(argv[++i]);
    } else if (std::strncmp(a, "--jobs=", 7) == 0) {
      opt.jobs = std::atoi(a + 7);
    } else if (std::strncmp(a, "--seeds=", 8) == 0) {
      opt.seeds = std::atoi(a + 8);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      opt.base_seed = static_cast<uint64_t>(std::atoll(a + 7));
    } else if (std::strncmp(a, "--rates=", 8) == 0) {
      std::vector<std::string> items;
      if (!SplitCsv(a + 8, items)) {
        std::fprintf(stderr, "error: empty --rates list\n");
        return 1;
      }
      opt.rates.clear();
      for (const std::string& r : items) {
        opt.rates.push_back(std::atof(r.c_str()));
      }
    } else if (std::strncmp(a, "--modes=", 8) == 0) {
      if (!SplitCsv(a + 8, mode_flags)) {
        std::fprintf(stderr, "error: empty --modes list\n");
        return 1;
      }
    } else if (std::strncmp(a, "--warmup-ms=", 12) == 0) {
      opt.warmup_ms = std::atoll(a + 12);
    } else if (std::strncmp(a, "--measure-ms=", 13) == 0) {
      opt.measure_ms = std::atoll(a + 13);
    } else if (std::strncmp(a, "--metrics-out=", 14) == 0) {
      opt.metrics_out = a + 14;
    } else if (std::strcmp(a, "--verify") == 0) {
      opt.verify = true;
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", a);
      return 1;
    }
  }
  if (opt.jobs < 1 || opt.seeds < 1) {
    std::fprintf(stderr, "error: --jobs and --seeds must be >= 1\n");
    return 1;
  }
  if (mode_flags.empty()) {
    opt.systems.assign(std::begin(kSystems), std::end(kSystems));
  } else {
    for (const std::string& flag : mode_flags) {
      const SystemDef* found = nullptr;
      for (const SystemDef& system : kSystems) {
        if (flag == system.flag) {
          found = &system;
        }
      }
      if (found == nullptr) {
        std::fprintf(stderr, "error: unknown mode %s\n", flag.c_str());
        return 1;
      }
      opt.systems.push_back(*found);
    }
  }

  // Workers only run simulations and write their own result slot, but the
  // log sink is process-global: drop to errors-only up front rather than
  // interleaving warning lines from concurrent runs.
  if (opt.jobs > 1) {
    SetLogLevel(LogLevel::kError);
  }

  const std::vector<Task> grid = BuildGrid(opt);
  std::printf("sweep: %zu load points (%zu systems x %zu rates x %d seeds), %d worker(s)\n",
              grid.size(), opt.systems.size(), opt.rates.size(), opt.seeds, opt.jobs);

  const std::string merged = RunAndMerge(grid, opt, opt.jobs);
  if (opt.verify) {
    const std::string serial = RunAndMerge(grid, opt, 1);
    if (merged != serial) {
      std::fprintf(stderr, "verify: FAILED — -j %d output differs from serial output\n",
                   opt.jobs);
      return 1;
    }
    std::printf("verify: OK — -j %d merged metrics byte-identical to serial (%zu bytes)\n",
                opt.jobs, merged.size());
  }
  if (!opt.metrics_out.empty()) {
    std::ofstream out(opt.metrics_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opt.metrics_out.c_str());
      return 2;
    }
    out << merged;
    std::printf("metrics: %zu bytes -> %s\n", merged.size(), opt.metrics_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace hovercraft

int main(int argc, char** argv) { return hovercraft::Main(argc, argv); }
